package core

import (
	"fmt"
	"strings"

	"docstore/internal/metrics"
	"docstore/internal/queries"
	"docstore/internal/tpcds"
)

// This file renders the paper's tables and figures from measured results.
// Each function mirrors one table or figure of the thesis and is regenerated
// by `cmd/bench` and by the root-level benchmarks.

// Table41 renders the experimental-setup matrix (Table 4.1).
func Table41(specs []ExperimentSpec) string {
	t := metrics.NewTable("Table 4.1: Experimental Setups",
		"Dataset", "Data Model", "Deployment Environment", "Experiment")
	for _, s := range specs {
		t.AddRow(fmt.Sprintf("%s (%.4gGB loaded)", s.Scale.Name, s.Scale.LoadedGB), string(s.Model), string(s.Env),
			fmt.Sprintf("Experiment %d", s.Number))
	}
	return t.String()
}

// Table35 renders the query-feature profile (Table 3.5).
func Table35() string {
	t := metrics.NewTable("Table 3.5: Query Features",
		"Features/Queries", "Query 7", "Query 21", "Query 46", "Query 50")
	qs := queries.All()
	row := func(name string, pick func(queries.Features) int) {
		cells := []any{name}
		for _, q := range qs {
			cells = append(cells, pick(q.Features))
		}
		t.AddRow(cells...)
	}
	row("Number of tables", func(f queries.Features) int { return f.Tables })
	row("Number of aggregation functions", func(f queries.Features) int { return f.AggregationFunctions })
	row("Number of group by/order by clauses", func(f queries.Features) int { return f.GroupOrderByClauses })
	row("Number of conditional constructs", func(f queries.Features) int { return f.ConditionalConstructs })
	row("Number of correlated subquery(s)", func(f queries.Features) int { return f.CorrelatedSubqueries })
	return t.String()
}

// Table36 renders per-table row counts at both scales (Table 3.6): the
// paper's cardinalities and the generated (divided) ones actually loaded.
func Table36(small, large tpcds.Scale) string {
	schema := tpcds.NewSchema()
	t := metrics.NewTable("Table 3.6: Table Details for Datasets 1GB and 5GB",
		"Table", "Paper rows (1GB)", "Paper rows (5GB)", fmt.Sprintf("Generated (1GB, 1/%d)", small.Divisor), fmt.Sprintf("Generated (5GB, 1/%d)", large.Divisor))
	for _, name := range schema.TableNames() {
		t.AddRow(name,
			small.PaperRowCount(name), large.PaperRowCount(name),
			small.RowCount(name), large.RowCount(name))
	}
	return t.String()
}

// Table43 renders per-table data load times for both datasets (Table 4.3).
func Table43(small, large *ExperimentResult) string {
	t := metrics.NewTable("Table 4.3: Data Load Times",
		"TPC-DS Data File", fmt.Sprintf("%s Dataset Load Times", small.Spec.Scale.Name), fmt.Sprintf("%s Dataset Load Times", large.Spec.Scale.Name))
	schema := tpcds.NewSchema()
	for _, name := range schema.TableNames() {
		s := small.Load.Result(name)
		l := large.Load.Result(name)
		if s == nil || l == nil {
			continue
		}
		t.AddRow(name, metrics.FormatDuration(s.Duration), metrics.FormatDuration(l.Duration))
	}
	t.AddRow("TOTAL", metrics.FormatDuration(small.Load.Total), metrics.FormatDuration(large.Load.Total))
	return t.String()
}

// Figure49 renders the total data load time comparison (Figure 4.9).
func Figure49(small, large *ExperimentResult) string {
	f := metrics.Figure{Title: "Figure 4.9: Comparison of Data Load Times", YLabel: "s"}
	f.AddSeries("Data Load Times",
		[]string{small.Spec.Scale.Name + " dataset", large.Spec.Scale.Name + " dataset"},
		[]float64{small.Load.Total.Seconds(), large.Load.Total.Seconds()})
	return f.String()
}

// Table44 renders query selectivity (Table 4.4): the result-set size per
// query per dataset.
func Table44(small, large *ExperimentResult) string {
	t := metrics.NewTable("Table 4.4: Query Selectivity",
		"Dataset", "Query 7", "Query 21", "Query 46", "Query 50")
	row := func(res *ExperimentResult) {
		cells := []any{res.Spec.Scale.Name}
		for _, q := range queries.All() {
			if run := res.QueryRun(q.ID); run != nil {
				cells = append(cells, metrics.FormatBytes(run.ResultBytes))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	row(small)
	row(large)
	return t.String()
}

// Table45 renders the query execution runtimes of every experiment
// (Table 4.5).
func Table45(suite *SuiteResult) string {
	t := metrics.NewTable("Table 4.5: Query Execution Runtimes",
		"Experiment", "Query 7", "Query 21", "Query 46", "Query 50")
	for _, res := range suite.Experiments {
		cells := []any{fmt.Sprintf("Experiment %d", res.Spec.Number)}
		for _, q := range queries.All() {
			if run := res.QueryRun(q.ID); run != nil {
				cells = append(cells, metrics.FormatDuration(run.Best))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// queryLabels are the x-axis labels of Figures 4.10 and 4.11.
func queryLabels() []string {
	labels := make([]string, 0, 4)
	for _, q := range queries.All() {
		labels = append(labels, fmt.Sprintf("Query %d", q.ID))
	}
	return labels
}

// figureForScale renders the per-scale query-runtime comparison
// (Figure 4.10 for the small dataset, Figure 4.11 for the large one).
func figureForScale(title string, suite *SuiteResult, scaleName string) string {
	f := metrics.Figure{Title: title, YLabel: "s"}
	series := []struct {
		name  string
		model DataModel
		env   Environment
	}{
		{"Denormalized Data Model on Stand-alone System", Denormalized, StandAlone},
		{"Normalized Data Model on Stand-alone System", Normalized, StandAlone},
		{"Normalized Data Model on Sharded System", Normalized, Sharded},
	}
	for _, s := range series {
		var values []float64
		found := false
		for _, res := range suite.Experiments {
			if res.Spec.Scale.Name != scaleName || res.Spec.Model != s.model || res.Spec.Env != s.env {
				continue
			}
			found = true
			for _, q := range queries.All() {
				if run := res.QueryRun(q.ID); run != nil {
					values = append(values, run.Best.Seconds())
				} else {
					values = append(values, 0)
				}
			}
		}
		if found {
			f.AddSeries(s.name, queryLabels(), values)
		}
	}
	return f.String()
}

// Figure410 renders the query-runtime comparison for the small dataset.
func Figure410(suite *SuiteResult, smallName string) string {
	return figureForScale("Figure 4.10: Query Execution Times, "+smallName+" dataset", suite, smallName)
}

// Figure411 renders the query-runtime comparison for the large dataset.
func Figure411(suite *SuiteResult, largeName string) string {
	return figureForScale("Figure 4.11: Query Execution Times, "+largeName+" dataset", suite, largeName)
}

// Observations checks the qualitative findings of §4.3 against a suite result
// and reports each as satisfied or not; EXPERIMENTS.md records the output.
func Observations(suite *SuiteResult, smallName, largeName string) string {
	var b strings.Builder
	check := func(name string, ok bool) {
		status := "HOLDS"
		if !ok {
			status = "DOES NOT HOLD"
		}
		fmt.Fprintf(&b, "[%s] %s\n", status, name)
	}
	for _, scaleName := range []string{smallName, largeName} {
		denormExp := suite.experimentFor(scaleName, Denormalized, StandAlone)
		normStandalone := suite.experimentFor(scaleName, Normalized, StandAlone)
		normSharded := suite.experimentFor(scaleName, Normalized, Sharded)
		if denormExp == nil || normStandalone == nil || normSharded == nil {
			continue
		}
		// Observation (i): the denormalized stand-alone setups are fastest for
		// every query.
		fastest := true
		for _, q := range queries.All() {
			d, ns, nsh := denormExp.QueryRun(q.ID), normStandalone.QueryRun(q.ID), normSharded.QueryRun(q.ID)
			if d == nil || ns == nil || nsh == nil || d.Best > ns.Best || d.Best > nsh.Best {
				fastest = false
			}
		}
		check(fmt.Sprintf("%s: denormalized stand-alone is fastest for every query (§4.3 i)", scaleName), fastest)
		// Observation (ii): among normalized setups, stand-alone beats sharded
		// for queries 7, 21 and 46.
		broadcastSlower := true
		for _, id := range []int{7, 21, 46} {
			ns, nsh := normStandalone.QueryRun(id), normSharded.QueryRun(id)
			if ns == nil || nsh == nil || ns.Best > nsh.Best {
				broadcastSlower = false
			}
		}
		check(fmt.Sprintf("%s: normalized stand-alone beats sharded for queries 7/21/46 (§4.3 ii)", scaleName), broadcastSlower)
		// Observation (iii): query 50, which carries the shard key, is faster
		// on the sharded cluster.
		ns, nsh := normStandalone.QueryRun(50), normSharded.QueryRun(50)
		check(fmt.Sprintf("%s: query 50 is faster on the sharded cluster (§4.3 iii)", scaleName),
			ns != nil && nsh != nil && nsh.Best < ns.Best)
	}
	return b.String()
}

func (s *SuiteResult) experimentFor(scaleName string, model DataModel, env Environment) *ExperimentResult {
	for _, e := range s.Experiments {
		if e.Spec.Scale.Name == scaleName && e.Spec.Model == model && e.Spec.Env == env {
			return e
		}
	}
	return nil
}

// FullReport renders every table and figure of the evaluation for a suite.
func FullReport(suite *SuiteResult, small, large tpcds.Scale) string {
	var b strings.Builder
	smallRes := suite.experimentFor(small.Name, Normalized, StandAlone)
	largeRes := suite.experimentFor(large.Name, Normalized, StandAlone)
	b.WriteString(Table41(PaperExperiments(small, large)))
	b.WriteString("\n")
	b.WriteString(Table35())
	b.WriteString("\n")
	b.WriteString(Table36(small, large))
	b.WriteString("\n")
	if smallRes != nil && largeRes != nil {
		b.WriteString(Table43(smallRes, largeRes))
		b.WriteString("\n")
		b.WriteString(Figure49(smallRes, largeRes))
		b.WriteString("\n")
		b.WriteString(Table44(smallRes, largeRes))
		b.WriteString("\n")
	}
	b.WriteString(Table45(suite))
	b.WriteString("\n")
	b.WriteString(Figure410(suite, small.Name))
	b.WriteString("\n")
	b.WriteString(Figure411(suite, large.Name))
	b.WriteString("\n")
	b.WriteString(Observations(suite, small.Name, large.Name))
	return b.String()
}
