package core

import (
	"fmt"
	"sort"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/driver"
	"docstore/internal/queries"
)

// marshalAll renders documents to their canonical BSON bytes so result sets
// can be compared byte-for-byte (ordered) or as multisets (unordered).
func marshalAll(docs []*bson.Doc) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = string(bson.Marshal(d))
	}
	return out
}

func assertSameDocs(t *testing.T, label string, got, want []*bson.Doc, ordered bool) {
	t.Helper()
	g, w := marshalAll(got), marshalAll(want)
	if !ordered {
		sort.Strings(g)
		sort.Strings(w)
	}
	if len(g) != len(w) {
		t.Fatalf("%s: got %d docs, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: doc %d differs:\n got  %v\n want %v", label, i, got[i], want[i])
		}
	}
}

// pipelineOrdered reports whether the pipeline's output order is defined:
// every benchmark pipeline ends with $sort (+$out), so results compare
// ordered; anything else compares as a multiset.
func pipelineOrdered(stages []*bson.Doc) bool {
	for _, s := range stages {
		if s.Has("$sort") {
			return true
		}
	}
	return false
}

// TestBenchmarkQueryCursorEquivalence runs every benchmark query's
// denormalized pipeline through the slice path and the cursor path on both
// deployment environments and asserts identical results — the
// cursor/slice equivalence property for queries 7/21/46/50.
func TestBenchmarkQueryCursorEquivalence(t *testing.T) {
	small, _ := testScales()
	cfg := testConfig()
	params := cfg.Params

	deployments := []ExperimentSpec{
		{Number: 3, Scale: small, Model: Denormalized, Env: StandAlone},
		{Number: 103, Scale: small, Model: Denormalized, Env: Sharded},
	}
	for _, spec := range deployments {
		d, err := Setup(spec, cfg)
		if err != nil {
			t.Fatalf("setting up %s: %v", spec.Label(), err)
		}
		if caps := driver.Capabilities(d.Store); !caps.Cursors {
			t.Fatalf("%s store reports no cursor capability (%s)", spec.Label(), caps)
		}
		cs := d.Store
		for _, q := range queries.All() {
			t.Run(fmt.Sprintf("%s/Query%d", spec.Env, q.ID), func(t *testing.T) {
				stages := q.DenormalizedPipeline(params)
				want, _, err := queries.RunDenormalized(d.Store, q, params)
				if err != nil {
					t.Fatal(err)
				}
				it, err := cs.AggregateCursor(q.Fact, stages)
				if err != nil {
					t.Fatal(err)
				}
				var got []*bson.Doc
				for {
					doc, ok := it.Next()
					if !ok {
						break
					}
					got = append(got, doc)
				}
				if err := it.Err(); err != nil {
					t.Fatal(err)
				}
				it.Close()
				assertSameDocs(t, q.Name, got, want, pipelineOrdered(stages))
			})
		}
	}
}

// TestBenchmarkQueryParallelEquivalence asserts AggregateParallel agrees
// with the cursor path for every benchmark query on the stand-alone
// denormalized deployment.
func TestBenchmarkQueryParallelEquivalence(t *testing.T) {
	small, _ := testScales()
	cfg := testConfig()
	params := cfg.Params
	d, err := Setup(ExperimentSpec{Number: 3, Scale: small, Model: Denormalized, Env: StandAlone}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	standalone, ok := d.Store.(*driver.Standalone)
	if !ok {
		t.Fatalf("expected stand-alone deployment, got %T", d.Store)
	}
	for _, q := range queries.All() {
		t.Run(fmt.Sprintf("Query%d", q.ID), func(t *testing.T) {
			stages := q.DenormalizedPipeline(params)
			want, err := standalone.DB.AggregateParallel(q.Fact, stages, 4)
			if err != nil {
				t.Fatal(err)
			}
			it, err := standalone.DB.AggregateCursor(q.Fact, stages)
			if err != nil {
				t.Fatal(err)
			}
			var got []*bson.Doc
			for {
				doc, ok := it.Next()
				if !ok {
					break
				}
				got = append(got, doc)
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			it.Close()
			assertSameDocs(t, q.Name, got, want, pipelineOrdered(stages))
		})
	}
}

// TestNormalizedQueryCursorEquivalence runs the translated (normalized)
// plans with a store whose Find/Aggregate are served by draining cursors —
// which is what the production entry points now are — and compares against
// the recorded slice results, covering the normalized execution path of all
// four queries.
func TestNormalizedQueryCursorEquivalence(t *testing.T) {
	small, _ := testScales()
	cfg := testConfig()
	params := cfg.Params
	for _, env := range []Environment{StandAlone, Sharded} {
		spec := ExperimentSpec{Number: 2, Scale: small, Model: Normalized, Env: env}
		d, err := Setup(spec, cfg)
		if err != nil {
			t.Fatalf("setting up %s: %v", spec.Label(), err)
		}
		for _, q := range queries.All() {
			t.Run(fmt.Sprintf("%s/Query%d", env, q.ID), func(t *testing.T) {
				first, _, err := queries.RunNormalized(d.Store, q, params)
				if err != nil {
					t.Fatal(err)
				}
				second, _, err := queries.RunNormalized(d.Store, q, params)
				if err != nil {
					t.Fatal(err)
				}
				assertSameDocs(t, q.Name, second, first, true)
			})
		}
	}
}
