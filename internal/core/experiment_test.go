package core

import (
	"strings"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/queries"
	"docstore/internal/tpcds"
)

// testScales returns tiny scales so the full experiment matrix runs in a few
// seconds of test time while keeping every inter-table ratio.
func testScales() (tpcds.Scale, tpcds.Scale) {
	return tpcds.ScaleSmall.WithDivisor(4000), tpcds.ScaleLarge.WithDivisor(4000)
}

// testConfig disables latency simulation and runs each query once.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NetworkLatency = 0
	cfg.Runs = 1
	cfg.ChunkSizeBytes = 64 << 10
	return cfg
}

func TestPaperExperimentsMatchTable41(t *testing.T) {
	small, large := testScales()
	specs := PaperExperiments(small, large)
	if len(specs) != 6 {
		t.Fatalf("expected 6 experiments, got %d", len(specs))
	}
	want := []struct {
		scale string
		model DataModel
		env   Environment
	}{
		{"1GB", Normalized, Sharded},
		{"1GB", Normalized, StandAlone},
		{"1GB", Denormalized, StandAlone},
		{"5GB", Normalized, Sharded},
		{"5GB", Normalized, StandAlone},
		{"5GB", Denormalized, StandAlone},
	}
	for i, spec := range specs {
		if spec.Number != i+1 || spec.Scale.Name != want[i].scale || spec.Model != want[i].model || spec.Env != want[i].env {
			t.Fatalf("experiment %d = %+v", i+1, spec)
		}
		if spec.Label() == "" {
			t.Fatalf("empty label")
		}
	}
}

func TestSetupStandaloneAndShardedDeployments(t *testing.T) {
	small, _ := testScales()
	cfg := testConfig()

	standalone, err := Setup(ExperimentSpec{Number: 2, Scale: small, Model: Normalized, Env: StandAlone}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if standalone.Standalone == nil || standalone.Cluster != nil {
		t.Fatalf("stand-alone deployment misconfigured")
	}
	if standalone.Load == nil || standalone.Load.TotalDocuments() == 0 {
		t.Fatalf("dataset not loaded")
	}
	if standalone.Generator() == nil {
		t.Fatalf("generator missing")
	}
	wantSales := small.RowCount("store_sales")
	if n, _ := standalone.Store.Count("store_sales", nil); n != wantSales {
		t.Fatalf("store_sales count = %d, want %d", n, wantSales)
	}

	sharded, err := Setup(ExperimentSpec{Number: 1, Scale: small, Model: Normalized, Env: Sharded}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Cluster == nil || sharded.Cluster.ShardCount() != cfg.Shards {
		t.Fatalf("sharded deployment misconfigured")
	}
	// The fact collections are sharded; data is spread over the shards.
	for fact := range ShardKeys() {
		if !sharded.Cluster.ConfigServer().IsSharded(DatabaseName(small) + "." + fact) {
			t.Fatalf("%s is not sharded", fact)
		}
	}
	populated := 0
	for _, s := range sharded.Cluster.Shards() {
		if s.Database(DatabaseName(small)).Collection("store_sales").Count() > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("store_sales documents only landed on %d shards", populated)
	}
	if n, _ := sharded.Store.Count("store_sales", nil); n != wantSales {
		t.Fatalf("sharded store_sales count = %d, want %d", n, wantSales)
	}
	// Unknown environment errors.
	if _, err := Setup(ExperimentSpec{Scale: small, Model: Normalized, Env: "weird"}, cfg); err == nil {
		t.Fatalf("unknown environment should fail")
	}
}

// TestExperimentEquivalenceAcrossModelsAndEnvironments is the central
// correctness check of the reproduction: every query must return the same
// logical result on the normalized stand-alone deployment, the normalized
// sharded deployment, and the denormalized stand-alone deployment
// (Experiments 1-3 at the small scale).
func TestExperimentEquivalenceAcrossModelsAndEnvironments(t *testing.T) {
	small, _ := testScales()
	cfg := testConfig()

	specs := []ExperimentSpec{
		{Number: 1, Scale: small, Model: Normalized, Env: Sharded},
		{Number: 2, Scale: small, Model: Normalized, Env: StandAlone},
		{Number: 3, Scale: small, Model: Denormalized, Env: StandAlone},
	}
	deployments := make([]*Deployment, 0, len(specs))
	for _, spec := range specs {
		d, err := Setup(spec, cfg)
		if err != nil {
			t.Fatalf("setting up %s: %v", spec.Label(), err)
		}
		deployments = append(deployments, d)
	}

	for _, q := range queries.All() {
		results := make([][]*bson.Doc, len(deployments))
		for i, d := range deployments {
			var docs []*bson.Doc
			var err error
			if d.Spec.Model == Denormalized {
				docs, _, err = queries.RunDenormalized(d.Store, q, cfg.Params)
			} else {
				docs, _, err = queries.RunNormalized(d.Store, q, cfg.Params)
			}
			if err != nil {
				t.Fatalf("%s on %s: %v", q.Name, d.Spec.Label(), err)
			}
			results[i] = docs
		}
		// Queries 7, 21 and 46 must return data at this scale; Query 50 is a
		// very thin slice (returns in one month) and may legitimately be
		// empty, but must agree across deployments either way.
		if q.ID != 50 && len(results[1]) == 0 {
			t.Errorf("%s returned no documents on the normalized stand-alone deployment", q.Name)
		}
		for i := 1; i < len(results); i++ {
			if len(results[i]) != len(results[0]) {
				t.Errorf("%s: deployment %s returned %d docs, %s returned %d",
					q.Name, deployments[i].Spec.Label(), len(results[i]), deployments[0].Spec.Label(), len(results[0]))
				continue
			}
			for j := range results[i] {
				if !results[i][j].EqualUnordered(results[0][j]) {
					t.Errorf("%s: result %d differs between %s and %s:\n  %s\n  %s",
						q.Name, j, deployments[i].Spec.Label(), deployments[0].Spec.Label(),
						results[i][j], results[0][j])
					break
				}
			}
		}
	}
}

func TestRunExperimentAndSuiteReporting(t *testing.T) {
	small, large := testScales()
	cfg := testConfig()

	// A two-experiment mini-suite (normalized and denormalized stand-alone at
	// the small scale) exercises the result plumbing and every report
	// renderer without the cost of the full matrix.
	suite := &SuiteResult{Config: cfg}
	for _, spec := range []ExperimentSpec{
		{Number: 2, Scale: small, Model: Normalized, Env: StandAlone},
		{Number: 3, Scale: small, Model: Denormalized, Env: StandAlone},
	} {
		res, err := RunExperiment(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Queries) != 4 {
			t.Fatalf("experiment %d ran %d queries", spec.Number, len(res.Queries))
		}
		for _, q := range res.Queries {
			if q.Best <= 0 || len(q.Runs) != cfg.Runs {
				t.Fatalf("query run not measured: %+v", q)
			}
		}
		if res.QueryRun(7) == nil || res.QueryRun(99) != nil {
			t.Fatalf("QueryRun lookup broken")
		}
		suite.Experiments = append(suite.Experiments, res)
	}
	if suite.Experiment(2) == nil || suite.Experiment(99) != nil {
		t.Fatalf("Experiment lookup broken")
	}

	// The denormalized model must not do more work than the normalized model
	// on the same data — the headline result of the thesis. The comparison
	// uses the deterministic documents-examined counter instead of wall-clock
	// time: the normalized plan reads the fact collection plus every joined
	// dimension (and its intermediate collections), while the denormalized
	// plan reads only the pre-joined fact, so the counter ordering holds
	// regardless of scheduler load when packages run in parallel.
	norm, den := suite.Experiment(2), suite.Experiment(3)
	for _, id := range []int{7, 21, 46} {
		n, d := norm.QueryRun(id), den.QueryRun(id)
		if n.DocsExamined <= 0 {
			t.Errorf("query %d: normalized run examined no documents", id)
		}
		if d.DocsExamined > n.DocsExamined {
			t.Errorf("query %d: denormalized examined %d docs, more than normalized %d",
				id, d.DocsExamined, n.DocsExamined)
		}
	}

	// Report renderers produce the paper's table/figure headings.
	if !strings.Contains(Table41(PaperExperiments(small, large)), "Experiment 6") {
		t.Errorf("Table41 output incomplete")
	}
	if !strings.Contains(Table35(), "Query 50") {
		t.Errorf("Table35 output incomplete")
	}
	if !strings.Contains(Table36(small, large), "store_sales") {
		t.Errorf("Table36 output incomplete")
	}
	if !strings.Contains(Table43(norm, norm), "TOTAL") {
		t.Errorf("Table43 output incomplete")
	}
	if !strings.Contains(Figure49(norm, norm), "Figure 4.9") {
		t.Errorf("Figure49 output incomplete")
	}
	if !strings.Contains(Table44(norm, norm), "Query 21") {
		t.Errorf("Table44 output incomplete")
	}
	if !strings.Contains(Table45(suite), "Experiment 3") {
		t.Errorf("Table45 output incomplete")
	}
	if !strings.Contains(Figure410(suite, small.Name), "Figure 4.10") {
		t.Errorf("Figure410 output incomplete")
	}
	if Figure411(suite, large.Name) == "" {
		t.Errorf("Figure411 output empty")
	}
	if obs := Observations(suite, small.Name, large.Name); obs != "" && !strings.Contains(obs, "HOLDS") {
		t.Errorf("Observations output unexpected: %q", obs)
	}
}

func TestDefaultConfigAndDatabaseName(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Shards != 3 || cfg.Runs != 5 || cfg.Params.SalesYear != 2001 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	if DatabaseName(tpcds.ScaleSmall) != "Dataset_1GB" || DatabaseName(tpcds.ScaleLarge) != "Dataset_5GB" {
		t.Fatalf("DatabaseName wrong")
	}
	keys := ShardKeys()
	if len(keys) != 3 || keys["store_sales"] == nil {
		t.Fatalf("ShardKeys = %v", keys)
	}
}
