package core

import (
	"strings"
	"testing"

	"docstore/internal/queries"
)

func TestExtensionExperimentsSpecs(t *testing.T) {
	small, large := testScales()
	specs := ExtensionExperiments(small, large)
	if len(specs) != 2 {
		t.Fatalf("expected 2 extension experiments, got %d", len(specs))
	}
	for _, spec := range specs {
		if spec.Model != Denormalized || spec.Env != Sharded {
			t.Fatalf("extension spec = %+v", spec)
		}
	}
	if specs[0].Number != 7 || specs[1].Number != 8 {
		t.Fatalf("extension numbering = %d, %d", specs[0].Number, specs[1].Number)
	}
}

// TestDenormalizedShardedDeployment exercises the future-work setup end to
// end at tiny scale: denormalizing through the router and querying the
// denormalized sharded collections must give the same answers as the
// stand-alone denormalized deployment.
func TestDenormalizedShardedDeployment(t *testing.T) {
	small, _ := testScales()
	cfg := testConfig()

	standalone, err := Setup(ExperimentSpec{Number: 3, Scale: small, Model: Denormalized, Env: StandAlone}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Setup(ExperimentSpec{Number: 7, Scale: small, Model: Denormalized, Env: Sharded}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries.All() {
		a, _, err := queries.RunDenormalized(standalone.Store, q, cfg.Params)
		if err != nil {
			t.Fatalf("%s stand-alone: %v", q.Name, err)
		}
		b, _, err := queries.RunDenormalized(sharded.Store, q, cfg.Params)
		if err != nil {
			t.Fatalf("%s sharded: %v", q.Name, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: stand-alone %d docs, sharded %d docs", q.Name, len(a), len(b))
		}
		for i := range a {
			if !a[i].EqualUnordered(b[i]) {
				t.Fatalf("%s row %d differs:\n  stand-alone: %s\n  sharded:     %s", q.Name, i, a[i], b[i])
			}
		}
	}

	// The extension report renders a comparison once both experiments exist.
	suite := &SuiteResult{Config: cfg}
	resA, err := standalone.RunAllQueries()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sharded.RunAllQueries()
	if err != nil {
		t.Fatal(err)
	}
	suite.Experiments = append(suite.Experiments, resA, resB)
	report := ExtensionReport(suite, small.Name, "none")
	if !strings.Contains(report, "Query 7") || !strings.Contains(report, "Denormalized sharded") {
		t.Fatalf("extension report incomplete:\n%s", report)
	}
	// Without the sharded experiment the report is empty.
	if ExtensionReport(&SuiteResult{Experiments: []*ExperimentResult{resA}}, small.Name, "none") != "" {
		t.Fatalf("report should be empty without both experiments")
	}
}
