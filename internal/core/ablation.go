package core

import (
	"fmt"
	"time"

	"docstore/internal/bson"
	"docstore/internal/metrics"
	"docstore/internal/mongos"
	"docstore/internal/queries"
	"docstore/internal/storage"
	"docstore/internal/tpcds"
)

// Ablations isolate the design choices DESIGN.md calls out: the shard-key
// choice (targeted vs broadcast routing), secondary indexes on the normalized
// model, and sequential vs parallel scatter-gather at the router. Each
// returns a small report and the raw numbers so the benchmarks can assert on
// them.

// ShardKeyAblationResult compares routing behaviour for a query under two
// shard keys.
type ShardKeyAblationResult struct {
	Query          int
	TicketKeyStats mongos.RoutingStats
	TicketKeyTime  time.Duration
	AlternateKey   string
	AlternateStats mongos.RoutingStats
	AlternateTime  time.Duration
}

// RunShardKeyAblation runs Query 50 against two sharded deployments that
// differ only in the store_sales shard key: the ticket-number key the paper's
// observation (iii) relies on, and an alternate key the query never
// constrains, which forces a broadcast.
func RunShardKeyAblation(scale tpcds.Scale, cfg Config) (*ShardKeyAblationResult, error) {
	res := &ShardKeyAblationResult{Query: 50, AlternateKey: "ss_cdemo_sk"}
	q := queries.MustByID(50)

	run := func(keys map[string]*bson.Doc) (mongos.RoutingStats, time.Duration, error) {
		spec := ExperimentSpec{Number: 0, Scale: scale, Model: Normalized, Env: Sharded}
		d, err := setupShardedWithKeys(spec, cfg, keys)
		if err != nil {
			return mongos.RoutingStats{}, 0, err
		}
		d.Cluster.Router().ResetStats()
		_, elapsed, err := queries.RunNormalized(d.Store, q, cfg.Params)
		if err != nil {
			return mongos.RoutingStats{}, 0, err
		}
		return d.Cluster.Router().Stats(), elapsed, nil
	}

	var err error
	res.TicketKeyStats, res.TicketKeyTime, err = run(ShardKeys())
	if err != nil {
		return nil, err
	}
	altKeys := ShardKeys()
	altKeys["store_sales"] = bson.D("ss_cdemo_sk", "hashed")
	res.AlternateStats, res.AlternateTime, err = run(altKeys)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// setupShardedWithKeys is Setup for a sharded normalized deployment with an
// explicit shard-key assignment.
func setupShardedWithKeys(spec ExperimentSpec, cfg Config, keys map[string]*bson.Doc) (*Deployment, error) {
	d := &Deployment{Spec: spec, Config: cfg, generator: tpcds.NewGenerator(spec.Scale, cfg.Seed)}
	dbName := DatabaseName(spec.Scale)
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	d.Cluster = c
	for fact, key := range keys {
		if _, err := c.ShardCollection(dbName, fact, key); err != nil {
			return nil, err
		}
	}
	d.Store = newShardedStore(c, dbName)
	if d.Load, err = loadAndIndex(d); err != nil {
		return nil, err
	}
	return d, nil
}

// String renders the ablation result.
func (r *ShardKeyAblationResult) String() string {
	t := metrics.NewTable(fmt.Sprintf("Ablation: shard-key choice for Query %d", r.Query),
		"Shard key", "Targeted queries", "Broadcast queries", "Shard calls", "Runtime")
	t.AddRow("ss_ticket_number (paper)", r.TicketKeyStats.TargetedQueries, r.TicketKeyStats.BroadcastQueries,
		r.TicketKeyStats.ShardCalls, metrics.FormatDuration(r.TicketKeyTime))
	t.AddRow(r.AlternateKey, r.AlternateStats.TargetedQueries, r.AlternateStats.BroadcastQueries,
		r.AlternateStats.ShardCalls, metrics.FormatDuration(r.AlternateTime))
	return t.String()
}

// IndexAblationResult compares a normalized query with and without secondary
// indexes.
type IndexAblationResult struct {
	Query          int
	WithIndexes    time.Duration
	WithoutIndexes time.Duration
	PlansWith      []storage.Plan
}

// RunIndexAblation runs Query 7 on two stand-alone normalized deployments,
// one with the benchmark's secondary indexes and one with none.
func RunIndexAblation(scale tpcds.Scale, cfg Config) (*IndexAblationResult, error) {
	res := &IndexAblationResult{Query: 7}
	q := queries.MustByID(7)

	spec := ExperimentSpec{Number: 0, Scale: scale, Model: Normalized, Env: StandAlone}
	with, err := Setup(spec, cfg)
	if err != nil {
		return nil, err
	}
	if _, res.WithIndexes, err = queries.RunNormalized(with.Store, q, cfg.Params); err != nil {
		return nil, err
	}

	without := &Deployment{Spec: spec, Config: cfg, generator: tpcds.NewGenerator(scale, cfg.Seed)}
	without.Standalone = newStandaloneServer()
	without.Store = newStandaloneStore(without.Standalone, DatabaseName(scale))
	if without.Load, err = loadOnly(without); err != nil {
		return nil, err
	}
	if _, res.WithoutIndexes, err = queries.RunNormalized(without.Store, q, cfg.Params); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the ablation result.
func (r *IndexAblationResult) String() string {
	t := metrics.NewTable(fmt.Sprintf("Ablation: secondary indexes for Query %d (normalized, stand-alone)", r.Query),
		"Configuration", "Runtime")
	t.AddRow("with FK/PK indexes", metrics.FormatDuration(r.WithIndexes))
	t.AddRow("without indexes", metrics.FormatDuration(r.WithoutIndexes))
	return t.String()
}

// ScatterAblationResult compares sequential and parallel scatter-gather for a
// broadcast query on the sharded cluster.
type ScatterAblationResult struct {
	Query      int
	Sequential time.Duration
	Parallel   time.Duration
}

// RunScatterAblation runs Query 46 (a broadcast query) on two sharded
// deployments differing only in the router's scatter mode.
func RunScatterAblation(scale tpcds.Scale, cfg Config) (*ScatterAblationResult, error) {
	res := &ScatterAblationResult{Query: 46}
	q := queries.MustByID(46)
	for _, parallel := range []bool{false, true} {
		c := cfg
		c.ParallelScatter = parallel
		spec := ExperimentSpec{Number: 0, Scale: scale, Model: Normalized, Env: Sharded}
		d, err := Setup(spec, c)
		if err != nil {
			return nil, err
		}
		_, elapsed, err := queries.RunNormalized(d.Store, q, c.Params)
		if err != nil {
			return nil, err
		}
		if parallel {
			res.Parallel = elapsed
		} else {
			res.Sequential = elapsed
		}
	}
	return res, nil
}

// String renders the ablation result.
func (r *ScatterAblationResult) String() string {
	t := metrics.NewTable(fmt.Sprintf("Ablation: scatter-gather mode for Query %d (normalized, sharded)", r.Query),
		"Scatter mode", "Runtime")
	t.AddRow("sequential (thesis client)", metrics.FormatDuration(r.Sequential))
	t.AddRow("parallel (real mongos)", metrics.FormatDuration(r.Parallel))
	return t.String()
}
