// Package core is the experiment framework of the reproduction — the paper's
// primary contribution re-expressed as a library. It defines the six
// experimental setups of Table 4.1 (two dataset scales × {normalized sharded,
// normalized stand-alone, denormalized stand-alone}), builds each deployment
// (loading data through the migration algorithm, denormalizing when the setup
// calls for it, sharding the fact collections when the environment is a
// cluster), runs the four analytical queries the prescribed number of times,
// and renders every table and figure of the evaluation (Tables 3.5, 3.6, 4.1,
// 4.3, 4.4, 4.5 and Figures 4.9, 4.10, 4.11).
package core

import (
	"fmt"
	"time"

	"docstore/internal/bson"
	"docstore/internal/cluster"
	"docstore/internal/denorm"
	"docstore/internal/driver"
	"docstore/internal/migrate"
	"docstore/internal/mongod"
	"docstore/internal/queries"
	"docstore/internal/tpcds"
)

// DataModel selects how the relational data is modelled in the document
// store.
type DataModel string

// Data models.
const (
	Normalized   DataModel = "normalized"
	Denormalized DataModel = "denormalized"
)

// Environment selects the deployment environment.
type Environment string

// Environments.
const (
	StandAlone Environment = "stand-alone"
	Sharded    Environment = "sharded"
)

// ExperimentSpec is one row of Table 4.1.
type ExperimentSpec struct {
	Number int
	Scale  tpcds.Scale
	Model  DataModel
	Env    Environment
}

// Label renders the spec the way the thesis labels experiments.
func (s ExperimentSpec) Label() string {
	return fmt.Sprintf("Experiment %d (%s / %s / %s)", s.Number, s.Scale.Name, s.Model, s.Env)
}

// PaperExperiments returns the six experimental setups of Table 4.1 for the
// given pair of scales.
func PaperExperiments(small, large tpcds.Scale) []ExperimentSpec {
	return []ExperimentSpec{
		{Number: 1, Scale: small, Model: Normalized, Env: Sharded},
		{Number: 2, Scale: small, Model: Normalized, Env: StandAlone},
		{Number: 3, Scale: small, Model: Denormalized, Env: StandAlone},
		{Number: 4, Scale: large, Model: Normalized, Env: Sharded},
		{Number: 5, Scale: large, Model: Normalized, Env: StandAlone},
		{Number: 6, Scale: large, Model: Denormalized, Env: StandAlone},
	}
}

// Config tunes how deployments are built and how queries are run.
type Config struct {
	// Seed drives the deterministic data generator.
	Seed int64
	// Shards is the cluster size for sharded environments (the thesis uses 3).
	Shards int
	// NetworkLatency is the simulated per-call router↔shard latency.
	NetworkLatency time.Duration
	// ParallelScatter fans broadcast shard calls out concurrently, as the
	// real query router does.
	ParallelScatter bool
	// ChunkSizeBytes overrides the chunk size for sharded collections
	// (0 keeps the 64 MB default; the laptop-scale datasets use a smaller
	// value so that chunk splitting actually happens).
	ChunkSizeBytes int
	// Runs is how many times each query is executed; the best run is
	// reported, matching §4.2 (five warm runs, best reported).
	Runs int
	// Params are the query predicate values.
	Params queries.Params
}

// DefaultConfig returns the configuration used by the benchmark harness.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Shards:          3,
		NetworkLatency:  200 * time.Microsecond,
		ParallelScatter: true,
		ChunkSizeBytes:  1 << 20,
		Runs:            5,
		Params:          queries.DefaultParams(),
	}
}

// DatabaseName returns the database name used for a scale, following the
// thesis ("Dataset_1GB", "Dataset_5GB").
func DatabaseName(scale tpcds.Scale) string { return "Dataset_" + scale.Name }

// ShardKeys returns the shard-key specification per fact collection used by
// the sharded experiments: hashed keys on the ticket number for the sales and
// returns facts (which is why Query 50, whose driving lookup is by ticket
// number, routes to specific shards) and on the date key for inventory.
func ShardKeys() map[string]*bson.Doc {
	return map[string]*bson.Doc{
		"store_sales":   bson.D("ss_ticket_number", "hashed"),
		"store_returns": bson.D("sr_ticket_number", "hashed"),
		"inventory":     bson.D("inv_date_sk", "hashed"),
	}
}

// Deployment is a fully prepared experimental setup: data loaded (and
// denormalized when the model calls for it) into either a stand-alone server
// or a sharded cluster, reachable through a driver.Store.
type Deployment struct {
	Spec   ExperimentSpec
	Config Config
	Store  driver.Store

	Load   *migrate.DatasetLoadResult
	Denorm *denorm.DatasetResult

	Standalone *mongod.Server
	Cluster    *cluster.Cluster

	generator *tpcds.Generator
}

// Generator returns the deployment's data generator.
func (d *Deployment) Generator() *tpcds.Generator { return d.generator }

// DocsExamined sums the documents examined by read cursors across the
// deployment's servers (the stand-alone server, or every shard).
func (d *Deployment) DocsExamined() int64 {
	if d.Standalone != nil {
		return d.Standalone.DocsExamined()
	}
	if d.Cluster != nil {
		var total int64
		for _, s := range d.Cluster.Shards() {
			total += s.DocsExamined()
		}
		return total
	}
	return 0
}

// Setup builds the deployment for an experiment: it creates the environment,
// migrates the generated dataset into it, builds the query indexes, shards
// the fact collections (sharded environments), and denormalizes the fact
// collections (denormalized model).
func Setup(spec ExperimentSpec, cfg Config) (*Deployment, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	d := &Deployment{Spec: spec, Config: cfg, generator: tpcds.NewGenerator(spec.Scale, cfg.Seed)}
	dbName := DatabaseName(spec.Scale)

	switch spec.Env {
	case StandAlone:
		d.Standalone = mongod.NewServer(mongod.Options{Name: "standalone-m4.4xlarge", RAMBytes: 64 << 30})
		d.Store = driver.NewStandalone(d.Standalone.Database(dbName))
	case Sharded:
		c, err := cluster.Build(cluster.Config{
			Shards:          cfg.Shards,
			ShardRAMBytes:   8 << 30,
			NetworkLatency:  cfg.NetworkLatency,
			ParallelScatter: cfg.ParallelScatter,
			ChunkSizeBytes:  cfg.ChunkSizeBytes,
		})
		if err != nil {
			return nil, err
		}
		d.Cluster = c
		for fact, key := range ShardKeys() {
			if _, err := c.ShardCollection(dbName, fact, key); err != nil {
				return nil, fmt.Errorf("core: sharding %s: %w", fact, err)
			}
		}
		d.Store = driver.NewSharded(c.Router(), dbName)
	default:
		return nil, fmt.Errorf("core: unknown environment %q", spec.Env)
	}

	load, err := migrate.LoadDataset(d.Store, d.generator)
	if err != nil {
		return nil, fmt.Errorf("core: loading dataset for %s: %w", spec.Label(), err)
	}
	d.Load = load
	if err := migrate.EnsureQueryIndexes(d.Store, d.generator.Schema()); err != nil {
		return nil, fmt.Errorf("core: building indexes for %s: %w", spec.Label(), err)
	}

	if spec.Model == Denormalized {
		res, err := denorm.DenormalizeDataset(d.Store, d.generator.Schema())
		if err != nil {
			return nil, fmt.Errorf("core: denormalizing for %s: %w", spec.Label(), err)
		}
		d.Denorm = &res
		if err := denorm.EnsureDenormalizedIndexes(d.Store); err != nil {
			return nil, fmt.Errorf("core: indexing denormalized collections for %s: %w", spec.Label(), err)
		}
	}
	return d, nil
}

// QueryRun is the measured execution of one query on one deployment.
type QueryRun struct {
	Experiment int
	QueryID    int
	Runs       []time.Duration
	Best       time.Duration
	Mean       time.Duration
	ResultDocs int
	// ResultBytes is the encoded size of the result set — the selectivity
	// measure of Table 4.4.
	ResultBytes int64
	// DocsExamined is the number of stored documents the deployment's
	// servers read to answer the query (first run): a deterministic work
	// measure for cross-model comparisons that, unlike wall-clock time, does
	// not flake under parallel test load.
	DocsExamined int64
}

// RunQuery executes one query cfg.Runs times against the deployment and
// returns the measurements. Data is warm in memory for every run, matching
// the thesis' methodology.
func (d *Deployment) RunQuery(q *queries.Query) (QueryRun, error) {
	run := QueryRun{Experiment: d.Spec.Number, QueryID: q.ID}
	for i := 0; i < d.Config.Runs; i++ {
		var docs []*bson.Doc
		var elapsed time.Duration
		var err error
		var examinedBefore int64
		if i == 0 {
			examinedBefore = d.DocsExamined()
		}
		if d.Spec.Model == Denormalized {
			docs, elapsed, err = queries.RunDenormalized(d.Store, q, d.Config.Params)
		} else {
			docs, elapsed, err = queries.RunNormalized(d.Store, q, d.Config.Params)
		}
		if err != nil {
			return run, fmt.Errorf("core: %s on %s: %w", q.Name, d.Spec.Label(), err)
		}
		run.Runs = append(run.Runs, elapsed)
		if run.Best == 0 || elapsed < run.Best {
			run.Best = elapsed
		}
		run.Mean += elapsed
		if i == 0 {
			run.ResultDocs = len(docs)
			for _, doc := range docs {
				run.ResultBytes += int64(bson.EncodedSize(doc))
			}
			run.DocsExamined = d.DocsExamined() - examinedBefore
		}
	}
	if len(run.Runs) > 0 {
		run.Mean /= time.Duration(len(run.Runs))
	}
	return run, nil
}

// ExperimentResult is the outcome of one experimental setup: load times plus
// the four query runs.
type ExperimentResult struct {
	Spec    ExperimentSpec
	Load    *migrate.DatasetLoadResult
	Denorm  *denorm.DatasetResult
	Queries []QueryRun
}

// QueryRun returns the run for a query id, or nil.
func (r *ExperimentResult) QueryRun(id int) *QueryRun {
	for i := range r.Queries {
		if r.Queries[i].QueryID == id {
			return &r.Queries[i]
		}
	}
	return nil
}

// RunExperiment builds the deployment for a spec and runs all four queries.
func RunExperiment(spec ExperimentSpec, cfg Config) (*ExperimentResult, error) {
	d, err := Setup(spec, cfg)
	if err != nil {
		return nil, err
	}
	return d.RunAllQueries()
}

// RunAllQueries runs the four benchmark queries on an existing deployment.
func (d *Deployment) RunAllQueries() (*ExperimentResult, error) {
	res := &ExperimentResult{Spec: d.Spec, Load: d.Load, Denorm: d.Denorm}
	for _, q := range queries.All() {
		run, err := d.RunQuery(q)
		if err != nil {
			return res, err
		}
		res.Queries = append(res.Queries, run)
	}
	return res, nil
}

// SuiteResult is the outcome of the full six-experiment suite.
type SuiteResult struct {
	Config      Config
	Experiments []*ExperimentResult
}

// Experiment returns the result for an experiment number, or nil.
func (s *SuiteResult) Experiment(n int) *ExperimentResult {
	for _, e := range s.Experiments {
		if e.Spec.Number == n {
			return e
		}
	}
	return nil
}

// RunSuite runs every experiment of Table 4.1 at the two given scales.
func RunSuite(small, large tpcds.Scale, cfg Config) (*SuiteResult, error) {
	suite := &SuiteResult{Config: cfg}
	for _, spec := range PaperExperiments(small, large) {
		res, err := RunExperiment(spec, cfg)
		if err != nil {
			return suite, err
		}
		suite.Experiments = append(suite.Experiments, res)
	}
	return suite, nil
}
