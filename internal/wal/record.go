package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// RecordKind discriminates what a log record describes.
type RecordKind int

// Record kinds.
const (
	// KindBatch is a batch of write operations against one collection; a
	// scalar insert/update/delete logs as a one-op batch.
	KindBatch RecordKind = iota
	// KindClear records a collection being wiped in place
	// (storage.Collection.Drop, which ReplaceContents and $out use).
	KindClear
	// KindDropCollection records a collection being removed from its
	// database, so recovery does not resurrect dropped collections.
	KindDropCollection
	// KindDropDatabase records a whole database being removed.
	KindDropDatabase
	// KindEnsureIndex records a secondary index creation (Spec, Unique), so
	// recovery rebuilds indexes — and so replayed writes see the same
	// unique-constraint enforcement the original run did.
	KindEnsureIndex
	// KindDropIndex records an index removal by name (Index).
	KindDropIndex
)

// String names the kind for diagnostics.
func (k RecordKind) String() string {
	switch k {
	case KindBatch:
		return "batch"
	case KindClear:
		return "clear"
	case KindDropCollection:
		return "dropCollection"
	case KindDropDatabase:
		return "dropDatabase"
	case KindEnsureIndex:
		return "ensureIndex"
	case KindDropIndex:
		return "dropIndex"
	default:
		return fmt.Sprintf("recordKind(%d)", int(k))
	}
}

// Record is one logical entry of the write-ahead log: a batch of operations
// against a single collection, or a structural event (clear/drop). The LSN is
// assigned by WAL.Append; records replay in LSN order.
type Record struct {
	LSN     int64
	Kind    RecordKind
	DB      string
	Coll    string
	Ordered bool
	Ops     []storage.WriteOp
	// Spec and Unique describe a KindEnsureIndex record; Index names the
	// victim of a KindDropIndex record.
	Spec   *bson.Doc
	Unique bool
	Index  string
}

// Clone deep-copies the record so it can be applied to multiple servers
// without sharing document storage (inserted documents are stored by
// reference).
func (r *Record) Clone() *Record {
	out := &Record{
		LSN: r.LSN, Kind: r.Kind, DB: r.DB, Coll: r.Coll, Ordered: r.Ordered,
		Spec: r.Spec.Clone(), Unique: r.Unique, Index: r.Index,
	}
	if r.Ops != nil {
		out.Ops = make([]storage.WriteOp, len(r.Ops))
		for i, op := range r.Ops {
			out.Ops[i] = storage.WriteOp{
				Kind: op.Kind,
				Doc:  op.Doc.Clone(),
				Update: query.UpdateSpec{
					Query:  op.Update.Query.Clone(),
					Update: op.Update.Update.Clone(),
					Upsert: op.Update.Upsert,
					Multi:  op.Update.Multi,
				},
				Filter: op.Filter.Clone(),
				Multi:  op.Multi,
			}
		}
	}
	return out
}

// Framing: every record is stored as
//
//	[4B little-endian payload length][4B CRC32C of payload][payload]
//
// where the payload is the record rendered as a binary bson document. The
// CRC lets recovery distinguish a torn tail (partial write at the moment of
// a crash) from a complete record; the length prefix bounds the read.

const (
	frameHeaderSize = 8
	// MaxRecordSize bounds a single record payload. A batch record carries
	// whole documents, so it can exceed the single-document limit, but a
	// length prefix beyond this is treated as corruption rather than an
	// instruction to allocate gigabytes.
	MaxRecordSize = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTornRecord reports an incomplete or checksum-failing record at the end
// of a segment: the signature of a crash mid-append. Recovery truncates the
// segment at the first torn record and continues.
var ErrTornRecord = errors.New("wal: torn record")

// EncodeRecord renders the record as a framed byte slice ready to append.
func EncodeRecord(r *Record) []byte {
	return framePayload(bson.Marshal(encodeRecordDoc(r)))
}

// The "lsn" field leads the record document, so its int64 value sits at a
// fixed offset inside the payload: document length (4), the int64 tag (1)
// and the "lsn\x00" key (4). Append exploits this to marshal a record —
// the expensive part for a big batch — outside the append lock and patch
// the LSN in once the append is ordered.
const lsnValueOffset = 4 + 1 + 4

// lsnTagByte is whatever tag the bson encoder emits for a leading int64
// field; patchFrameLSN verifies it so an encoder change degrades to a
// re-encode instead of corrupting frames.
var lsnTagByte = bson.Marshal(bson.D("lsn", int64(1)))[4]

// patchFrameLSN rewrites the LSN of an encoded frame in place and fixes the
// checksum, reporting whether the frame had the expected layout.
func patchFrameLSN(frame []byte, lsn int64) bool {
	if len(frame) < frameHeaderSize+lsnValueOffset+8 {
		return false
	}
	payload := frame[frameHeaderSize:]
	if payload[4] != lsnTagByte || string(payload[5:9]) != "lsn\x00" {
		return false
	}
	binary.LittleEndian.PutUint64(payload[lsnValueOffset:], uint64(lsn))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	return true
}

// framePayload wraps raw payload bytes in the length+checksum frame.
func framePayload(payload []byte) []byte {
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderSize:], payload)
	return frame
}

// DecodeRecord decodes one framed record from the front of data, returning
// the record and the remaining bytes. An incomplete or checksum-failing
// frame returns ErrTornRecord; a frame that decodes but does not describe a
// valid record returns a descriptive error. It never reads past the framed
// length and never panics on corrupt input (FuzzWALDecode enforces this).
func DecodeRecord(data []byte) (*Record, []byte, error) {
	if len(data) < frameHeaderSize {
		return nil, nil, ErrTornRecord
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[0:4]))
	if payloadLen < 5 || payloadLen > MaxRecordSize {
		return nil, nil, ErrTornRecord
	}
	if len(data) < frameHeaderSize+payloadLen {
		return nil, nil, ErrTornRecord
	}
	payload := data[frameHeaderSize : frameHeaderSize+payloadLen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, nil, ErrTornRecord
	}
	doc, err := bson.Unmarshal(payload)
	if err != nil {
		// The checksum matched, so the bytes are what was written; a payload
		// that is not a document is a writer bug or deliberate corruption,
		// not a torn tail.
		return nil, nil, fmt.Errorf("wal: record payload: %w", err)
	}
	rec, err := decodeRecordDoc(doc)
	if err != nil {
		return nil, nil, err
	}
	return rec, data[frameHeaderSize+payloadLen:], nil
}

func encodeRecordDoc(r *Record) *bson.Doc {
	d := bson.NewDoc(6)
	d.Set("lsn", r.LSN)
	d.Set("k", int(r.Kind))
	d.Set("db", r.DB)
	d.Set("coll", r.Coll)
	if r.Ordered {
		d.Set("ord", true)
	}
	if r.Ops != nil {
		arr := make([]any, len(r.Ops))
		for i := range r.Ops {
			arr[i] = encodeOpDoc(&r.Ops[i])
		}
		d.Set("ops", arr)
	}
	if r.Spec != nil {
		d.Set("spec", r.Spec)
	}
	if r.Unique {
		d.Set("unique", true)
	}
	if r.Index != "" {
		d.Set("index", r.Index)
	}
	return d
}

func encodeOpDoc(op *storage.WriteOp) *bson.Doc {
	d := bson.NewDoc(4)
	d.Set("k", int(op.Kind))
	switch op.Kind {
	case storage.InsertOp:
		if op.Doc != nil {
			d.Set("d", op.Doc)
		}
	case storage.UpdateOp:
		if op.Update.Query != nil {
			d.Set("q", op.Update.Query)
		}
		if op.Update.Update != nil {
			d.Set("u", op.Update.Update)
		}
		if op.Update.Multi {
			d.Set("multi", true)
		}
		if op.Update.Upsert {
			d.Set("upsert", true)
		}
	case storage.DeleteOp:
		if op.Filter != nil {
			d.Set("q", op.Filter)
		}
		if op.Multi {
			d.Set("multi", true)
		}
	}
	return d
}

func decodeRecordDoc(d *bson.Doc) (*Record, error) {
	r := &Record{}
	lsn, ok := bson.AsInt(d.GetOr("lsn", nil))
	if !ok || lsn <= 0 {
		return nil, fmt.Errorf("wal: record has no valid lsn")
	}
	r.LSN = lsn
	kind, _ := bson.AsInt(d.GetOr("k", int64(0)))
	if kind < int64(KindBatch) || kind > int64(KindDropIndex) {
		return nil, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	r.Kind = RecordKind(kind)
	r.DB, _ = d.GetOr("db", "").(string)
	r.Coll, _ = d.GetOr("coll", "").(string)
	r.Ordered = bson.Truthy(d.GetOr("ord", false))
	r.Spec, _ = d.GetOr("spec", nil).(*bson.Doc)
	r.Unique = bson.Truthy(d.GetOr("unique", false))
	r.Index, _ = d.GetOr("index", "").(string)
	if v, ok := d.Get("ops"); ok {
		arr, isArr := v.([]any)
		if !isArr {
			return nil, fmt.Errorf("wal: record ops is not an array")
		}
		r.Ops = make([]storage.WriteOp, 0, len(arr))
		for i, e := range arr {
			opDoc, isDoc := e.(*bson.Doc)
			if !isDoc {
				return nil, fmt.Errorf("wal: record op %d is not a document", i)
			}
			op, err := decodeOpDoc(opDoc)
			if err != nil {
				return nil, fmt.Errorf("wal: record op %d: %w", i, err)
			}
			r.Ops = append(r.Ops, op)
		}
	}
	return r, nil
}

func decodeOpDoc(d *bson.Doc) (storage.WriteOp, error) {
	kind, _ := bson.AsInt(d.GetOr("k", int64(-1)))
	switch storage.WriteOpKind(kind) {
	case storage.InsertOp:
		doc, _ := d.GetOr("d", nil).(*bson.Doc)
		return storage.InsertWriteOp(doc), nil
	case storage.UpdateOp:
		q, _ := d.GetOr("q", nil).(*bson.Doc)
		u, _ := d.GetOr("u", nil).(*bson.Doc)
		return storage.UpdateWriteOp(query.UpdateSpec{
			Query:  q,
			Update: u,
			Multi:  bson.Truthy(d.GetOr("multi", false)),
			Upsert: bson.Truthy(d.GetOr("upsert", false)),
		}), nil
	case storage.DeleteOp:
		q, _ := d.GetOr("q", nil).(*bson.Doc)
		return storage.DeleteWriteOp(q, bson.Truthy(d.GetOr("multi", false))), nil
	default:
		return storage.WriteOp{}, fmt.Errorf("unknown write op kind %d", kind)
	}
}
