package wal

import (
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// FuzzWALDecode hammers the record decoder with arbitrary bytes. The
// contract under fuzz: never panic, never over-read (the remainder returned
// on success is a strict suffix, so a decode loop always terminates), and
// round-trip any record that decodes successfully.
func FuzzWALDecode(f *testing.F) {
	seed := [][]byte{
		EncodeRecord(&Record{LSN: 1, Kind: KindBatch, DB: "db", Coll: "c", Ordered: true,
			Ops: []storage.WriteOp{storage.InsertWriteOp(bson.D(bson.IDKey, 1, "v", "x"))}}),
		EncodeRecord(&Record{LSN: 2, Kind: KindBatch, DB: "db", Coll: "c",
			Ops: []storage.WriteOp{
				storage.UpdateWriteOp(query.UpdateSpec{Query: bson.D("a", 1), Update: bson.D("$inc", bson.D("a", 1)), Multi: true}),
				storage.DeleteWriteOp(bson.D("a", bson.D("$lt", 0)), true),
			}}),
		EncodeRecord(&Record{LSN: 3, Kind: KindClear, DB: "db", Coll: "c"}),
		EncodeRecord(&Record{LSN: 4, Kind: KindDropDatabase, DB: "db"}),
		// Checksum-valid frames of non-record payloads.
		framePayload(bson.Marshal(bson.D("lsn", "not a number"))),
		framePayload([]byte("garbage that is not bson")),
		{0x00}, {},
	}
	for _, s := range seed {
		f.Add(s)
	}
	// A couple of mutated seeds so the corpus starts with near-miss frames.
	broken := append([]byte(nil), seed[0]...)
	broken[len(broken)-1] ^= 0xff
	f.Add(broken)
	f.Add(seed[0][:len(seed[0])-4])

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, rest, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if rec == nil {
			t.Fatalf("nil record without error")
		}
		if len(rest) >= len(data) {
			t.Fatalf("decoder made no progress: %d of %d bytes left", len(rest), len(data))
		}
		consumed := len(data) - len(rest)
		if consumed > len(data) {
			t.Fatalf("decoder over-read: consumed %d of %d", consumed, len(data))
		}
		// A record that decoded must re-encode and decode to the same thing
		// (field-for-field; the binary form may differ when unknown fields
		// were present in the fuzzed payload).
		again, rest2, err := DecodeRecord(EncodeRecord(rec))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest2))
		}
		if again.LSN != rec.LSN || again.Kind != rec.Kind || again.DB != rec.DB ||
			again.Coll != rec.Coll || again.Ordered != rec.Ordered || len(again.Ops) != len(rec.Ops) {
			t.Fatalf("round trip changed the record: %+v vs %+v", again, rec)
		}
	})
}
