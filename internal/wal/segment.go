package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files: the log is a sequence of fixed-header files named by the
// first LSN they hold ("wal-%016d.log"). A closed segment i therefore covers
// the LSN range [first_i, first_{i+1}-1], which is what checkpoint pruning
// needs to decide whether a whole file is obsolete.

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	segmentVersion = 1
)

var segmentMagic = [4]byte{'D', 'W', 'A', 'L'}

// segmentHeaderSize is the byte length of the segment file header:
// 4-byte magic plus a 4-byte little-endian format version.
const segmentHeaderSize = 8

func segmentName(firstLSN int64) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, firstLSN, segmentSuffix)
}

func encodeSegmentHeader() []byte {
	hdr := make([]byte, segmentHeaderSize)
	copy(hdr, segmentMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], segmentVersion)
	return hdr
}

func checkSegmentHeader(data []byte) error {
	if len(data) < segmentHeaderSize {
		return fmt.Errorf("wal: segment header truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != segmentMagic {
		return fmt.Errorf("wal: bad segment magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segmentVersion {
		return fmt.Errorf("wal: unsupported segment version %d", v)
	}
	return nil
}

// segmentInfo is one discovered segment file.
type segmentInfo struct {
	path     string
	firstLSN int64
}

// listSegments returns the segment files of dir sorted by first LSN.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		first, err := strconv.ParseInt(numPart, 10, 64)
		if err != nil || first <= 0 {
			return nil, fmt.Errorf("wal: unrecognized segment file name %q", name)
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// readSegmentRecords reads every complete record of one segment file,
// calling fn for each. It returns the number of bytes occupied by the header
// plus all complete records (the truncation point for a torn tail), the LSN
// of the last complete record (0 when none), and whether the segment ended
// with a torn record.
func readSegmentRecords(path string, fn func(*Record) error) (goodBytes int64, lastLSN int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, err
	}
	if err := checkSegmentHeader(data); err != nil {
		// A header shorter than segmentHeaderSize can only happen when the
		// process died while creating the segment: treat it as fully torn.
		if len(data) < segmentHeaderSize {
			return 0, 0, true, nil
		}
		return 0, 0, false, err
	}
	rest := data[segmentHeaderSize:]
	goodBytes = segmentHeaderSize
	for len(rest) > 0 {
		rec, next, err := DecodeRecord(rest)
		if err != nil {
			return goodBytes, lastLSN, true, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return goodBytes, lastLSN, false, err
			}
		}
		goodBytes += int64(len(rest) - len(next))
		lastLSN = rec.LSN
		rest = next
	}
	return goodBytes, lastLSN, false, nil
}

// SegmentFile describes one discovered segment file: its path and the LSN of
// the first record it holds. Change stream resume walks the listing to find
// the segments overlapping a resume token's position.
type SegmentFile struct {
	Path     string
	FirstLSN int64
}

// SegmentFiles lists the segment files of a log directory in first-LSN order.
func SegmentFiles(dir string) ([]SegmentFile, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentFile, len(segs))
	for i, s := range segs {
		out[i] = SegmentFile{Path: s.path, FirstLSN: s.firstLSN}
	}
	return out, nil
}

// ReadSegmentFile reads every complete record of one segment file in LSN
// order. A torn tail (partial frame from a crash, or from reading the active
// segment concurrently with an in-flight flush) silently ends the segment,
// exactly as Open's recovery scan treats it; callers that tail the live log
// bound their reads to LSNs known flushed, so a torn tail is always beyond
// what they need.
func ReadSegmentFile(path string) ([]*Record, error) {
	var out []*Record
	_, _, _, err := readSegmentRecords(path, func(r *Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SyncDir fsyncs a directory so renames and removals inside it are durable.
// The checkpoint machinery shares it for its own directory shuffling.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
