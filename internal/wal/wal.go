// Package wal implements the durability subsystem: a write-ahead log of
// length-prefixed, CRC32C-checksummed records in rotating segment files,
// with a configurable sync policy and group commit that coalesces concurrent
// acknowledgement waits into a single fsync.
//
// The log stores logical write batches (see Record): the storage engine
// appends a record before applying a batch, and acknowledgement of the write
// waits for the record to be durable under the configured policy. Recovery
// is a replay of the records newer than the last checkpoint; a torn tail
// (partial record from a crash mid-append) is detected by checksum and
// truncated on Open so every surviving record is intact.
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"docstore/internal/metrics"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

// Sync policies.
const (
	// SyncGroupCommit makes acknowledgement waits join a group commit: one
	// fsync covers every record appended before it, so concurrent writers
	// share the disk flush. This is the default.
	SyncGroupCommit SyncPolicy = iota
	// SyncAlways performs one fsync per acknowledged write: the naive
	// durable policy group commit is measured against.
	SyncAlways
	// SyncNone never fsyncs on the write path; data reaches disk on segment
	// rotation and Close, or when a commit is waited on with journaled
	// acknowledgement (writeConcern j: true), which forces a sync.
	SyncNone
)

// String names the policy (the accepted spellings of ParseSyncPolicy).
func (p SyncPolicy) String() string {
	switch p {
	case SyncGroupCommit:
		return "group"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("syncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the flag spelling of a sync policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "group":
		return SyncGroupCommit, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, group or none)", s)
	}
}

// DefaultSegmentMaxBytes is the rotation threshold for segment files.
const DefaultSegmentMaxBytes = 64 << 20

// Options configures a log.
type Options struct {
	// Dir is the directory holding the segment files. It is created when
	// absent.
	Dir string
	// Sync is the sync policy; the zero value is SyncGroupCommit.
	Sync SyncPolicy
	// GroupCommitInterval is an optional extra coalescing window: the group
	// commit leader waits this long before flushing so more writers can join
	// the batch. Zero (the default) flushes immediately; the batch then
	// consists of whatever accumulated during the previous fsync, which is
	// the classic group-commit behaviour.
	GroupCommitInterval time.Duration
	// SegmentMaxBytes rotates the active segment when it grows past this
	// size. Zero uses DefaultSegmentMaxBytes.
	SegmentMaxBytes int64
}

// WAL is an append-only write-ahead log over segment files in a directory.
// Append is safe for concurrent use.
type WAL struct {
	opts Options

	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer
	size      int64 // bytes written to the active segment (including header)
	lastLSN   int64 // highest assigned LSN
	syncedLSN int64 // highest LSN known durable
	closed    bool
	// failed poisons the log after a partial buffered write: the bufio
	// buffer may hold a truncated frame, and any later append would land
	// after the damage and be silently discarded as a torn tail on the
	// next recovery. Fail-stop is the only honest mode.
	failed error

	appends atomic.Int64 // records appended
	syncs   atomic.Int64 // fsyncs issued

	// fsyncHist times each write-path fsync; batchHist records how many
	// records each fsync made durable (the group-commit batch size). Both
	// are owned here — the wal package stays dependency-light — and the
	// durability layer attaches them to its metrics registry so /metrics
	// exports them as docstore_wal_* families.
	fsyncHist metrics.Histogram
	batchHist metrics.Histogram

	gc groupCommitter
}

// Stats reports append/fsync counters; appends divided by syncs is the
// effective group-commit batch size.
type Stats struct {
	Appends int64
	Syncs   int64
}

// Stats returns the current counters.
func (w *WAL) Stats() Stats {
	return Stats{Appends: w.appends.Load(), Syncs: w.syncs.Load()}
}

// FsyncHistogram returns the write-path fsync latency histogram. The WAL
// owns the histogram; callers with a metrics registry attach it via
// RegisterHistogramSeries so it appears on /metrics.
func (w *WAL) FsyncHistogram() *metrics.Histogram { return &w.fsyncHist }

// BatchHistogram returns the group-commit batch-size histogram: one
// observation per write-path fsync, valued at the number of records that
// fsync made durable. Values are raw counts, not durations.
func (w *WAL) BatchHistogram() *metrics.Histogram { return &w.batchHist }

// FsyncDurations snapshots the fsync latency histogram.
func (w *WAL) FsyncDurations() metrics.HistogramSnapshot { return w.fsyncHist.Snapshot() }

// BatchSizes snapshots the group-commit batch-size histogram.
func (w *WAL) BatchSizes() metrics.HistogramSnapshot { return w.batchHist.Snapshot() }

// Open opens (or creates) the log in opts.Dir. When existing segments are
// found, the newest one is scanned and a torn tail — a partial or
// checksum-failing record left by a crash mid-append — is truncated away, so
// subsequent appends extend a clean log. Records already in the log are not
// interpreted here; use Replay.
func Open(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{opts: opts}
	w.gc.w = w
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		w.lastLSN = 0
		if err := w.openSegmentLocked(1); err != nil {
			return nil, err
		}
		w.syncedLSN = 0
		return w, nil
	}
	// Scan the newest segment to find the end of the log and truncate any
	// torn tail in place. Older segments are immutable (they were fsynced on
	// rotation) and are only read again by Replay.
	last := segs[len(segs)-1]
	goodBytes, lastLSN, torn, err := readSegmentRecords(last.path, nil)
	if err != nil {
		return nil, err
	}
	if lastLSN == 0 {
		// Empty (or fully torn) segment: its name records the next LSN.
		lastLSN = last.firstLSN - 1
	}
	if torn {
		if err := os.Truncate(last.path, goodBytes); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.path, err)
		}
	}
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if goodBytes < segmentHeaderSize {
		// The crash happened while the header itself was being written;
		// rewrite it so the segment is well-formed.
		if _, err := f.Write(encodeSegmentHeader()[goodBytes:]); err != nil {
			f.Close()
			return nil, err
		}
		goodBytes = segmentHeaderSize
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.size = goodBytes
	w.lastLSN = lastLSN
	w.syncedLSN = lastLSN
	return w, nil
}

// openSegmentLocked creates the segment whose first record will be firstLSN
// and makes it the active file. The caller holds w.mu (or is Open).
func (w *WAL) openSegmentLocked(firstLSN int64) error {
	path := filepath.Join(w.opts.Dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegmentHeader()); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.size = segmentHeaderSize
	return nil
}

// rotateLocked closes the active segment (flushing and fsyncing it, so
// closed segments are always durable and intact) and starts the one whose
// first record will be nextFirstLSN. Everything before that record is in the
// just-synced file, which is what makes closed segments prunable as a unit.
func (w *WAL) rotateLocked(nextFirstLSN int64) error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if nextFirstLSN-1 > w.syncedLSN {
		w.syncedLSN = nextFirstLSN - 1
	}
	return w.openSegmentLocked(nextFirstLSN)
}

// Append assigns the record the next LSN and buffers it into the active
// segment. The record is NOT durable when Append returns: the caller holds
// the returned Commit and waits on it after releasing whatever lock ordered
// the append — that is what lets group commit coalesce concurrent writers.
func (w *WAL) Append(r *Record) (*Commit, error) {
	// Marshal outside the lock — encoding a big batch is the expensive part
	// of an append, and the WAL is shared by every collection of a server.
	// The LSN is not known yet; it is a fixed-offset field patched into the
	// frame once the append is ordered.
	frame := EncodeRecord(r)
	if len(frame)-frameHeaderSize > MaxRecordSize {
		// DecodeRecord treats over-limit length prefixes as corruption, so
		// an oversized record must be rejected here — before it is written,
		// let alone acknowledged — or recovery would truncate it away.
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d byte limit", len(frame)-frameHeaderSize, MaxRecordSize)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("wal: append to closed log")
	}
	if w.failed != nil {
		return nil, fmt.Errorf("wal: log failed: %w", w.failed)
	}
	w.lastLSN++
	r.LSN = w.lastLSN
	if !patchFrameLSN(frame, r.LSN) {
		// Unexpected encoder layout: fall back to re-encoding with the
		// real LSN under the lock. Same bytes on disk, just slower.
		frame = EncodeRecord(r)
	}
	if w.size > segmentHeaderSize && w.size+int64(len(frame)) > w.opts.SegmentMaxBytes {
		// The record being appended becomes the first of the new segment.
		if err := w.rotateLocked(r.LSN); err != nil {
			w.lastLSN--
			return nil, err
		}
	}
	if _, err := w.bw.Write(frame); err != nil {
		// The buffer may now hold a partial frame; appending anything after
		// it would be discarded as a torn tail on recovery. Poison the log.
		w.lastLSN--
		w.failed = err
		return nil, fmt.Errorf("wal: append failed, log poisoned: %w", err)
	}
	w.size += int64(len(frame))
	w.appends.Add(1)
	return &Commit{w: w, lsn: r.LSN}, nil
}

// LastLSN returns the highest assigned LSN.
func (w *WAL) LastLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// SyncedLSN returns the highest LSN known to be durable.
func (w *WAL) SyncedLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncedLSN
}

// Sync flushes and fsyncs everything appended so far. It skips the disk
// flush when nothing new was appended since the last sync.
func (w *WAL) Sync() error {
	w.mu.Lock()
	skip := !w.closed && w.syncedLSN == w.lastLSN
	w.mu.Unlock()
	if skip {
		return nil
	}
	return w.flushAndSync()
}

// syncAlways is the per-write cost of SyncAlways. Unlike Sync it never skips,
// because the policy's contract is one fsync per acknowledged write.
func (w *WAL) syncAlways() error { return w.flushAndSync() }

// flushAndSync flushes buffered frames under the append lock, then fsyncs
// the segment file WITHOUT holding it. Appends therefore keep filling the
// next group-commit batch while the disk works — this is what makes group
// commit amortize: batch size grows with whatever arrives during the
// in-flight fsync.
//
// A rotation or Close can close the captured file mid-fsync; both fsync
// everything before closing, so a failed Sync whose target is already
// covered by syncedLSN is a success.
func (w *WAL) flushAndSync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("wal: sync on closed log")
	}
	if err := w.bw.Flush(); err != nil {
		w.mu.Unlock()
		return err
	}
	target := w.lastLSN
	prevSynced := w.syncedLSN
	f := w.f
	w.mu.Unlock()

	w.syncs.Add(1)
	start := time.Now()
	err := f.Sync()
	w.fsyncHist.Observe(time.Since(start))
	if batch := target - prevSynced; batch > 0 {
		// How many records this fsync made durable: the group-commit batch.
		// Concurrent fsyncs can both claim the same records (each observed
		// its own prevSynced), which slightly overstates batches under
		// contention — acceptable for a coalescing-health gauge.
		w.batchHist.Observe(time.Duration(batch))
	}

	w.mu.Lock()
	if err == nil && target > w.syncedLSN {
		w.syncedLSN = target
	}
	covered := w.syncedLSN >= target
	w.mu.Unlock()
	if err != nil && !covered {
		return err
	}
	return nil
}

// Flush writes buffered frames through to the active segment file without
// fsyncing. After Flush returns, every appended record is readable from the
// segment files (the OS page cache serves reads of unsynced data); change
// stream resume uses this to replay history from disk without paying for a
// disk flush. A flush on a closed log is a no-op: Close already flushed.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if w.failed != nil {
		return fmt.Errorf("wal: log failed: %w", w.failed)
	}
	return w.bw.Flush()
}

// Close flushes, fsyncs and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncedLSN = w.lastLSN
	return w.f.Close()
}

// Prune removes closed segments whose every record has LSN <= upTo, i.e.
// segments fully covered by a checkpoint. The active segment is never
// removed. It returns the number of files removed.
func (w *WAL) Prune(upTo int64) (int, error) {
	// Flush so the active segment's name ordering on disk is consistent with
	// what listSegments sees; removal itself does not touch the active file.
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: prune on closed log")
	}
	segs, err := listSegments(w.opts.Dir)
	if err != nil {
		w.mu.Unlock()
		return 0, err
	}
	var victims []string
	for i := 0; i+1 < len(segs); i++ {
		// Closed segment i covers [first_i, first_{i+1}-1].
		if segs[i+1].firstLSN-1 <= upTo {
			victims = append(victims, segs[i].path)
		}
	}
	w.mu.Unlock()
	removed := 0
	for _, path := range victims {
		if err := os.Remove(path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := SyncDir(w.opts.Dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Dir returns the directory holding the segment files.
func (w *WAL) Dir() string { return w.opts.Dir }

// Commit is the handle an appender waits on for durability. It implements
// the storage engine's CommitWaiter.
type Commit struct {
	w   *WAL
	lsn int64
}

// LSN returns the log sequence number assigned to the appended record.
func (c *Commit) LSN() int64 { return c.lsn }

// Wait blocks until the record is durable under the log's sync policy:
//
//   - SyncAlways: one flush+fsync per call.
//   - SyncGroupCommit: join the group commit; one fsync covers every record
//     appended before it ran.
//   - SyncNone: returns immediately — unless journaled is true, which
//     forces a sync (the writeConcern {j: true} escalation).
//
// journaled additionally forces the group-commit path to have synced this
// record rather than merely scheduled it, which it does anyway; the flag
// only changes behaviour under SyncNone.
func (c *Commit) Wait(journaled bool) error {
	switch c.w.opts.Sync {
	case SyncAlways:
		return c.w.syncAlways()
	case SyncGroupCommit:
		return c.w.gc.wait(c.lsn)
	default: // SyncNone
		if journaled {
			return c.w.Sync()
		}
		return nil
	}
}
