package wal

import (
	"runtime"
	"sync"
	"time"
)

// groupCommitter coalesces concurrent durability waits into shared fsyncs.
//
// The protocol is the classic leader-based group commit: the first waiter to
// find no sync in flight becomes the leader and fsyncs everything appended
// so far; waiters that arrive while a sync is in flight park on the forming
// batch and are woken when it completes, at which point one of them leads
// the next fsync. Because an fsync covers every record flushed before it, a
// batch's worth of writers is acknowledged per disk flush, and the batch
// size grows naturally with concurrency: it is whatever accumulated during
// the previous fsync (plus an optional fixed coalescing window).
type groupCommitter struct {
	w *WAL

	mu      sync.Mutex
	syncing bool
	batch   *commitBatch
}

// commitBatch is the set of waiters parked behind one in-flight sync.
type commitBatch struct {
	done chan struct{}
}

// wait blocks until lsn is durable.
func (g *groupCommitter) wait(lsn int64) error {
	for {
		g.mu.Lock()
		if g.w.SyncedLSN() >= lsn {
			g.mu.Unlock()
			return nil
		}
		if !g.syncing {
			g.syncing = true
			g.mu.Unlock()
			if d := g.w.opts.GroupCommitInterval; d > 0 {
				time.Sleep(d)
			} else {
				// Yield before flushing so writers queued on the scheduler
				// get to append into this batch. This matters most at
				// GOMAXPROCS=1, where a leader that goes straight from
				// wake-up to fsync would starve the other writers into
				// one-record batches; a few scheduler yields cost well
				// under a microsecond against a ~100µs fsync.
				runtime.Gosched()
				runtime.Gosched()
			}
			err := g.w.Sync()
			g.mu.Lock()
			g.syncing = false
			if b := g.batch; b != nil {
				g.batch = nil
				close(b.done)
			}
			g.mu.Unlock()
			// The leader appended before waiting, so its own record is
			// covered by the sync it just ran (or the error is its own).
			return err
		}
		b := g.batch
		if b == nil {
			b = &commitBatch{done: make(chan struct{})}
			g.batch = b
		}
		g.mu.Unlock()
		<-b.done
		// Re-check durability; if the completed sync did not cover this
		// record (or failed), loop and possibly lead the next one.
	}
}
