package wal

import (
	"fmt"
)

// Replay iterates every complete record in the log directory in LSN order,
// calling fn for each. It reads the segment files directly and may run
// while a WAL is open on the same directory, as long as no appends are in
// flight (the recovery sequence opens the WAL — which truncates any torn
// tail — then replays, then starts accepting writes).
//
// A torn record is tolerated only at the tail of the newest segment, where
// it marks the crash point; anywhere else it is corruption and an error.
// Replay stops early when fn returns an error.
func Replay(dir string, fn func(*Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	var lastLSN int64
	for i, seg := range segs {
		_, segLast, torn, err := readSegmentRecords(seg.path, func(r *Record) error {
			if r.LSN <= lastLSN {
				return fmt.Errorf("wal: record LSN %d out of order after %d in %s", r.LSN, lastLSN, seg.path)
			}
			lastLSN = r.LSN
			return fn(r)
		})
		if err != nil {
			return err
		}
		if torn && i != len(segs)-1 {
			return fmt.Errorf("wal: corrupt record mid-log in %s (torn records are only legal at the tail)", seg.path)
		}
		_ = segLast
	}
	return nil
}

// ReadAll replays the whole log into memory, returning the records in LSN
// order. It is a convenience for tests and for oplog loading.
func ReadAll(dir string) ([]*Record, error) {
	var out []*Record
	err := Replay(dir, func(r *Record) error {
		out = append(out, r)
		return nil
	})
	return out, err
}
