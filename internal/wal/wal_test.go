package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
)

func testDoc(i int) *bson.Doc {
	return bson.D(bson.IDKey, i, "v", fmt.Sprintf("value-%d", i))
}

func batchRecord(coll string, i int) *Record {
	return &Record{
		Kind: KindBatch, DB: "db", Coll: coll, Ordered: true,
		Ops: []storage.WriteOp{storage.InsertWriteOp(testDoc(i))},
	}
}

func mustOpen(t *testing.T, opts Options) *WAL {
	t.Helper()
	w, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func appendWait(t *testing.T, w *WAL, rec *Record, journaled bool) int64 {
	t.Helper()
	commit, err := w.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := commit.Wait(journaled); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return commit.LSN()
}

func TestRecordRoundTrip(t *testing.T) {
	records := []*Record{
		{Kind: KindBatch, DB: "db", Coll: "c", Ordered: true, Ops: []storage.WriteOp{
			storage.InsertWriteOp(bson.D(bson.IDKey, 1, "nested", bson.D("a", bson.A(1, "x")))),
			storage.UpdateWriteOp(query.UpdateSpec{
				Query:  bson.D("v", bson.D("$gt", 3)),
				Update: bson.D("$set", bson.D("flag", true)),
				Multi:  true, Upsert: true,
			}),
			storage.DeleteWriteOp(bson.D("v", 9), false),
		}},
		{Kind: KindClear, DB: "db", Coll: "c"},
		{Kind: KindDropCollection, DB: "db", Coll: "gone"},
		{Kind: KindDropDatabase, DB: "olddb"},
		// An insert op with no document (the shape a malformed bulk op
		// produces) must survive the round trip as-is.
		{Kind: KindBatch, DB: "db", Coll: "c", Ops: []storage.WriteOp{{Kind: storage.InsertOp}}},
	}
	for i, rec := range records {
		rec.LSN = int64(i + 1)
		frame := EncodeRecord(rec)
		got, rest, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("record %d: %d leftover bytes", i, len(rest))
		}
		if got.LSN != rec.LSN || got.Kind != rec.Kind || got.DB != rec.DB || got.Coll != rec.Coll || got.Ordered != rec.Ordered {
			t.Fatalf("record %d: header mismatch: %+v vs %+v", i, got, rec)
		}
		if len(got.Ops) != len(rec.Ops) {
			t.Fatalf("record %d: %d ops, want %d", i, len(got.Ops), len(rec.Ops))
		}
		for k := range rec.Ops {
			want, have := rec.Ops[k], got.Ops[k]
			if have.Kind != want.Kind {
				t.Fatalf("record %d op %d: kind %v vs %v", i, k, have.Kind, want.Kind)
			}
			if (want.Doc == nil) != (have.Doc == nil) || (want.Doc != nil && !have.Doc.Equal(want.Doc)) {
				t.Fatalf("record %d op %d: doc mismatch", i, k)
			}
		}
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	frame := EncodeRecord(&Record{LSN: 1, Kind: KindBatch, DB: "db", Coll: "c"})
	// Truncations anywhere are torn records.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeRecord(frame[:cut]); err != ErrTornRecord {
			t.Fatalf("cut at %d: err = %v, want ErrTornRecord", cut, err)
		}
	}
	// A flipped payload byte fails the checksum.
	for i := frameHeaderSize; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0xff
		if _, _, err := DecodeRecord(bad); err != ErrTornRecord {
			t.Fatalf("flip at %d: err = %v, want ErrTornRecord", i, err)
		}
	}
	// A checksum-valid frame whose payload is not a record (no LSN) fails
	// validation rather than reporting a torn tail.
	frame2 := framePayload(bson.Marshal(bson.D("k", 0)))
	if _, _, err := DecodeRecord(frame2); err == nil || err == ErrTornRecord {
		t.Fatalf("lsn-less record: err = %v, want validation error", err)
	}
	// Same for a checksum-valid frame of non-bson garbage.
	frame3 := framePayload([]byte("not a bson document"))
	if _, _, err := DecodeRecord(frame3); err == nil || err == ErrTornRecord {
		t.Fatalf("garbage payload: err = %v, want decode error", err)
	}
}

// TestPatchFrameLSN pins the fast path Append relies on: a frame encoded
// with a placeholder LSN patched to the real one must decode identically to
// a frame encoded with the real LSN directly.
func TestPatchFrameLSN(t *testing.T) {
	rec := &Record{Kind: KindBatch, DB: "db", Coll: "c", Ordered: true,
		Ops: []storage.WriteOp{storage.InsertWriteOp(testDoc(7))}}
	rec.LSN = 0
	frame := EncodeRecord(rec)
	if !patchFrameLSN(frame, 42) {
		t.Fatalf("patchFrameLSN rejected a frame produced by EncodeRecord")
	}
	got, rest, err := DecodeRecord(frame)
	if err != nil || len(rest) != 0 {
		t.Fatalf("patched frame does not decode: %v", err)
	}
	if got.LSN != 42 {
		t.Fatalf("patched LSN = %d, want 42", got.LSN)
	}
	rec.LSN = 42
	direct := EncodeRecord(rec)
	if string(direct) != string(frame) {
		t.Fatalf("patched frame differs from directly encoded frame")
	}
	// Frames without the expected layout are refused, not corrupted.
	if patchFrameLSN(framePayload([]byte("xxxxxxxxxxxxxxxxxxxxx")), 1) {
		t.Fatalf("patchFrameLSN accepted a non-record frame")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	var want []*Record
	for i := 0; i < 10; i++ {
		rec := batchRecord("c", i)
		appendWait(t, w, rec, false)
		want = append(want, rec)
	}
	appendWait(t, w, &Record{Kind: KindClear, DB: "db", Coll: "c"}, false)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 11 {
		t.Fatalf("replayed %d records, want 11", len(got))
	}
	for i, rec := range got {
		if rec.LSN != int64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
	if got[10].Kind != KindClear {
		t.Fatalf("last record kind = %v", got[10].Kind)
	}
	for i := 0; i < 10; i++ {
		if !got[i].Ops[0].Doc.Equal(want[i].Ops[0].Doc) {
			t.Fatalf("record %d document mismatch", i)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncGroupCommit, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			w := mustOpen(t, Options{Dir: dir, Sync: policy})
			for i := 0; i < 5; i++ {
				appendWait(t, w, batchRecord("c", i), false)
			}
			// j: true must force durability even under SyncNone.
			appendWait(t, w, batchRecord("c", 99), true)
			if policy != SyncNone && w.SyncedLSN() != 6 {
				t.Fatalf("synced LSN = %d, want 6", w.SyncedLSN())
			}
			if policy == SyncNone && w.SyncedLSN() != 6 {
				t.Fatalf("journaled wait under SyncNone left synced LSN %d", w.SyncedLSN())
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			recs, err := ReadAll(dir)
			if err != nil || len(recs) != 6 {
				t.Fatalf("replayed %d records (%v), want 6", len(recs), err)
			}
		})
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	for i := 0; i < 3; i++ {
		appendWait(t, w, batchRecord("c", i), false)
	}
	w.Close()
	w2 := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	if w2.LastLSN() != 3 {
		t.Fatalf("reopened LastLSN = %d, want 3", w2.LastLSN())
	}
	if lsn := appendWait(t, w2, batchRecord("c", 3), false); lsn != 4 {
		t.Fatalf("next LSN = %d, want 4", lsn)
	}
	w2.Close()
	recs, err := ReadAll(dir)
	if err != nil || len(recs) != 4 {
		t.Fatalf("replayed %d records (%v), want 4", len(recs), err)
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentMaxBytes: 256})
	const n = 40
	for i := 0; i < n; i++ {
		appendWait(t, w, batchRecord("c", i), false)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d", len(segs))
	}
	// Prune up to LSN 20: every fully covered segment goes, the rest stay,
	// and replay still returns a contiguous suffix.
	removed, err := w.Prune(20)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if removed == 0 {
		t.Fatalf("Prune removed nothing")
	}
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll after prune: %v", err)
	}
	if len(recs) == 0 || recs[len(recs)-1].LSN != n {
		t.Fatalf("replay after prune lost the tail")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN != recs[i-1].LSN+1 {
			t.Fatalf("replay after prune has a gap at %d", recs[i].LSN)
		}
	}
	if recs[0].LSN > 21 {
		t.Fatalf("prune removed records beyond the cutoff: first replayed LSN %d", recs[0].LSN)
	}
	// Appends continue on the surviving active segment.
	appendWait(t, w, batchRecord("c", n), false)
	w.Close()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		appendWait(t, w, batchRecord("c", i), false)
	}
	w.Close()
	segs, _ := listSegments(dir)
	path := segs[len(segs)-1].path
	goodSize := fileSize(t, path)
	// Simulate a crash mid-append: half of a valid next record.
	next := EncodeRecord(&Record{LSN: 6, Kind: KindBatch, DB: "db", Coll: "c",
		Ops: []storage.WriteOp{storage.InsertWriteOp(testDoc(6))}})
	appendBytes(t, path, next[:len(next)/2])

	w2 := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	if w2.LastLSN() != 5 {
		t.Fatalf("LastLSN after torn tail = %d, want 5", w2.LastLSN())
	}
	if got := fileSize(t, path); got != goodSize {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", got, goodSize)
	}
	// The log accepts appends again and the new record replays.
	appendWait(t, w2, batchRecord("c", 5), false)
	w2.Close()
	recs, err := ReadAll(dir)
	if err != nil || len(recs) != 6 {
		t.Fatalf("replayed %d records (%v), want 6", len(recs), err)
	}
}

func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncGroupCommit})
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				commit, err := w.Append(batchRecord("c", g*1000+i))
				if err == nil {
					err = commit.Wait(false)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if w.SyncedLSN() != writers*perWriter {
		t.Fatalf("synced LSN = %d, want %d", w.SyncedLSN(), writers*perWriter)
	}
	w.Close()
	recs, err := ReadAll(dir)
	if err != nil || len(recs) != writers*perWriter {
		t.Fatalf("replayed %d records (%v), want %d", len(recs), err, writers*perWriter)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"group", SyncGroupCommit}, {"none", SyncNone}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Fatalf("unknown policy should fail")
	}
}

func TestReplayRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentMaxBytes: 256})
	for i := 0; i < 20; i++ {
		appendWait(t, w, batchRecord("c", i), false)
	}
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	// Corrupt a record in the FIRST segment: that is not a torn tail and
	// replay must refuse rather than silently drop acknowledged history.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(dir, func(*Record) error { return nil }); err == nil {
		t.Fatalf("mid-log corruption must fail replay")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func appendBytes(t *testing.T, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// Ensure segment names order numerically even at widths the sort -V in CI
// never sees; a plain string sort of zero-padded names must equal LSN order.
func TestSegmentNaming(t *testing.T) {
	if segmentName(1) >= segmentName(10) || segmentName(999) >= segmentName(1000) {
		t.Fatalf("segment names do not sort: %q %q", segmentName(999), segmentName(1000))
	}
	if filepath.Ext(segmentName(1)) != ".log" {
		t.Fatalf("segment suffix changed: %q", segmentName(1))
	}
}
