package wal

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/storage"
)

// TestWALTortureCrashTail simulates a crash mid-write at randomized
// positions: a workload of acknowledged (synced) appends is followed by a
// random mutilation of the bytes past the acknowledgement point — truncation
// (the disk never saw the rest) or corruption (a partial/garbled sector).
// Every acknowledged record must survive replay byte-for-byte, no torn or
// garbled record may be surfaced, and the log must accept appends again
// after recovery.
//
// Each round uses a fresh seeded RNG stream so failures reproduce; the
// failing round's parameters are in the test log.
func TestWALTortureCrashTail(t *testing.T) {
	const rounds = 25
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xD15C + int64(round)))
			dir := t.TempDir()
			// Small segments so later rounds cross rotation boundaries.
			segMax := int64(512 + rng.Intn(2048))
			w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentMaxBytes: segMax})

			// Acknowledged workload: every append is synced before the next.
			acked := rng.Intn(30) + 1
			var wantDocs []*bson.Doc
			for i := 0; i < acked; i++ {
				doc := bson.D(bson.IDKey, i, "payload", randomString(rng, 1+rng.Intn(60)))
				wantDocs = append(wantDocs, doc)
				appendWait(t, w, &Record{
					Kind: KindBatch, DB: "db", Coll: "c", Ordered: true,
					Ops: []storage.WriteOp{storage.InsertWriteOp(doc)},
				}, true)
			}
			// The crash point: everything up to here is acknowledged, so the
			// active segment's current size is the durability boundary.
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatal(err)
			}
			tail := segs[len(segs)-1].path
			ackedSize := fileSize(t, tail)
			w.Close()

			// Un-acknowledged in-flight bytes: a prefix of one or more valid
			// future records, cut off or garbled at a random offset.
			var inflight []byte
			nextLSN := int64(acked + 1)
			for n := rng.Intn(3); n >= 0; n-- {
				inflight = append(inflight, EncodeRecord(&Record{
					LSN: nextLSN, Kind: KindBatch, DB: "db", Coll: "c",
					Ops: []storage.WriteOp{storage.InsertWriteOp(bson.D(bson.IDKey, 1000+nextLSN))},
				})...)
				nextLSN++
			}
			switch rng.Intn(3) {
			case 0: // torn: only a prefix reached the disk
				inflight = inflight[:rng.Intn(len(inflight)+1)]
			case 1: // corrupt: full length but garbled bytes
				for i := 0; i < 1+rng.Intn(4); i++ {
					inflight[rng.Intn(len(inflight))] ^= byte(1 + rng.Intn(255))
				}
			case 2: // torn AND garbled
				inflight = inflight[:rng.Intn(len(inflight)+1)]
				if len(inflight) > 0 {
					inflight[rng.Intn(len(inflight))] ^= 0x5a
				}
			}
			appendBytes(t, tail, inflight)

			// Recovery: open (truncates the tail) and replay.
			w2 := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentMaxBytes: segMax})
			recs, err := ReadAll(dir)
			if err != nil {
				t.Fatalf("replay after crash: %v", err)
			}
			if len(recs) < acked {
				t.Fatalf("replay lost acknowledged records: %d < %d (acked size %d, inflight %d bytes)",
					len(recs), acked, ackedSize, len(inflight))
			}
			for i := 0; i < acked; i++ {
				if recs[i].LSN != int64(i+1) {
					t.Fatalf("record %d replayed with LSN %d", i, recs[i].LSN)
				}
				if !recs[i].Ops[0].Doc.Equal(wantDocs[i]) {
					t.Fatalf("acknowledged record %d replayed with different content", i)
				}
			}
			// Anything beyond the acked set must be a complete, intact
			// in-flight record (never a torn or garbled one).
			for i := acked; i < len(recs); i++ {
				if recs[i].LSN != int64(i+1) || len(recs[i].Ops) != 1 || recs[i].Ops[0].Doc == nil {
					t.Fatalf("recovered in-flight record %d is malformed", i)
				}
			}
			// The log is appendable again and the new write survives another
			// reopen.
			lsn := appendWait(t, w2, &Record{
				Kind: KindBatch, DB: "db", Coll: "c",
				Ops: []storage.WriteOp{storage.InsertWriteOp(bson.D(bson.IDKey, "post-crash"))},
			}, true)
			w2.Close()
			recs2, err := ReadAll(dir)
			if err != nil {
				t.Fatalf("replay after recovery append: %v", err)
			}
			if recs2[len(recs2)-1].LSN != lsn {
				t.Fatalf("post-crash append did not replay")
			}
		})
	}
}

// TestWALTortureHeaderCrash covers a crash during segment creation: a
// partial or missing header on the newest segment must not lose the closed
// segments before it.
func TestWALTortureHeaderCrash(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentMaxBytes: 256})
	const n = 10
	for i := 0; i < n; i++ {
		appendWait(t, w, batchRecord("c", i), false)
	}
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need rotation for this test")
	}
	// Simulate: rotation created the next segment (named for the next LSN,
	// as rotateLocked does) but died mid-header.
	next := int64(n + 1)
	if next <= segs[len(segs)-1].firstLSN {
		t.Fatalf("unexpected segment layout: %+v", segs)
	}
	partial := encodeSegmentHeader()[:3]
	if err := os.WriteFile(dir+"/"+segmentName(next), partial, 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := mustOpen(t, Options{Dir: dir, Sync: SyncAlways, SegmentMaxBytes: 256})
	defer w2.Close()
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
}

func randomString(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
