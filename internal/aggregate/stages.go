package aggregate

import (
	"fmt"
	"strings"

	"docstore/internal/bson"
	"docstore/internal/query"
)

func parseStage(name string, arg any) (Stage, error) {
	switch name {
	case "$match":
		spec, ok := arg.(*bson.Doc)
		if !ok {
			return nil, fmt.Errorf("argument must be a document")
		}
		m, err := query.Compile(spec)
		if err != nil {
			return nil, err
		}
		return &matchStage{matcher: m}, nil
	case "$project":
		spec, ok := arg.(*bson.Doc)
		if !ok || spec.Len() == 0 {
			return nil, fmt.Errorf("argument must be a non-empty document")
		}
		return &projectStage{spec: spec}, nil
	case "$addFields", "$set":
		spec, ok := arg.(*bson.Doc)
		if !ok || spec.Len() == 0 {
			return nil, fmt.Errorf("argument must be a non-empty document")
		}
		return &addFieldsStage{spec: spec}, nil
	case "$group":
		spec, ok := arg.(*bson.Doc)
		if !ok {
			return nil, fmt.Errorf("argument must be a document")
		}
		return parseGroupStage(spec)
	case "$sort":
		spec, ok := arg.(*bson.Doc)
		if !ok {
			return nil, fmt.Errorf("argument must be a document")
		}
		s, err := query.ParseSort(spec)
		if err != nil {
			return nil, err
		}
		return &sortStage{sort: s}, nil
	case "$limit":
		n, ok := bson.AsInt(bson.Normalize(arg))
		if !ok || n < 0 {
			return nil, fmt.Errorf("argument must be a non-negative number")
		}
		return &limitStage{n: int(n)}, nil
	case "$skip":
		n, ok := bson.AsInt(bson.Normalize(arg))
		if !ok || n < 0 {
			return nil, fmt.Errorf("argument must be a non-negative number")
		}
		return &skipStage{n: int(n)}, nil
	case "$unwind":
		switch t := arg.(type) {
		case string:
			if !strings.HasPrefix(t, "$") {
				return nil, fmt.Errorf("path must start with $")
			}
			return &unwindStage{path: strings.TrimPrefix(t, "$")}, nil
		case *bson.Doc:
			pathVal, ok := t.Get("path")
			path, isStr := pathVal.(string)
			if !ok || !isStr || !strings.HasPrefix(path, "$") {
				return nil, fmt.Errorf("path must start with $")
			}
			preserve := bson.Truthy(t.GetOr("preserveNullAndEmptyArrays", false))
			return &unwindStage{path: strings.TrimPrefix(path, "$"), preserveEmpty: preserve}, nil
		default:
			return nil, fmt.Errorf("argument must be a path string or document")
		}
	case "$count":
		field, ok := arg.(string)
		if !ok || field == "" {
			return nil, fmt.Errorf("argument must be a non-empty field name")
		}
		return &countStage{field: field}, nil
	case "$out":
		target, ok := arg.(string)
		if !ok || target == "" {
			return nil, fmt.Errorf("argument must be a collection name")
		}
		return &outStage{target: target}, nil
	case "$lookup":
		spec, ok := arg.(*bson.Doc)
		if !ok {
			return nil, fmt.Errorf("argument must be a document")
		}
		ls := &lookupStage{}
		var strOK bool
		if ls.from, strOK = spec.GetOr("from", "").(string); !strOK || ls.from == "" {
			return nil, fmt.Errorf("from is required")
		}
		if ls.localField, strOK = spec.GetOr("localField", "").(string); !strOK || ls.localField == "" {
			return nil, fmt.Errorf("localField is required")
		}
		if ls.foreignField, strOK = spec.GetOr("foreignField", "").(string); !strOK || ls.foreignField == "" {
			return nil, fmt.Errorf("foreignField is required")
		}
		if ls.as, strOK = spec.GetOr("as", "").(string); !strOK || ls.as == "" {
			return nil, fmt.Errorf("as is required")
		}
		return ls, nil
	default:
		return nil, fmt.Errorf("unknown stage operator %s", name)
	}
}

// ---------------------------------------------------------------------------
// $match

type matchStage struct{ matcher *query.Matcher }

func (s *matchStage) Name() string { return "$match" }
func (s *matchStage) Local() bool  { return true }

func (s *matchStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	out := docs[:0:0]
	for _, d := range docs {
		if s.matcher.Matches(d) {
			out = append(out, d)
		}
	}
	return out, nil
}

func (s *matchStage) startStream() docStream { return matchStream{s} }

type matchStream struct{ s *matchStage }

func (st matchStream) push(d *bson.Doc, out []*bson.Doc) ([]*bson.Doc, bool, error) {
	if st.s.matcher.Matches(d) {
		out = append(out, d)
	}
	return out, true, nil
}

// ---------------------------------------------------------------------------
// $project

type projectStage struct{ spec *bson.Doc }

func (s *projectStage) Name() string { return "$project" }
func (s *projectStage) Local() bool  { return true }

func (s *projectStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	out := make([]*bson.Doc, 0, len(docs))
	for _, d := range docs {
		nd, err := projectDoc(s.spec, d)
		if err != nil {
			return nil, err
		}
		out = append(out, nd)
	}
	return out, nil
}

func (s *projectStage) startStream() docStream { return projectStream{s} }

type projectStream struct{ s *projectStage }

func (st projectStream) push(d *bson.Doc, out []*bson.Doc) ([]*bson.Doc, bool, error) {
	nd, err := projectDoc(st.s.spec, d)
	if err != nil {
		return out, false, err
	}
	return append(out, nd), true, nil
}

// projectDoc evaluates a $project specification against one document:
// 1/true includes a field, 0/false excludes it (only _id), any other value is
// an expression computing a new field.
func projectDoc(spec *bson.Doc, d *bson.Doc) (*bson.Doc, error) {
	out := bson.NewDoc(spec.Len() + 1)
	includeID := true
	idSetExplicitly := false
	for _, f := range spec.Fields() {
		switch v := f.Value.(type) {
		case int64, float64, bool:
			included := bson.Truthy(bson.Normalize(v))
			if f.Key == bson.IDKey {
				includeID = included
				idSetExplicitly = true
				continue
			}
			if included {
				if val, ok := d.GetPath(f.Key); ok {
					if err := out.SetPath(f.Key, val); err != nil {
						return nil, err
					}
				}
			}
		default:
			val, err := Evaluate(f.Value, d)
			if err != nil {
				return nil, err
			}
			if f.Key == bson.IDKey {
				idSetExplicitly = true
				includeID = false // replaced by the computed value below
				out.Set(bson.IDKey, val)
				continue
			}
			if err := out.SetPath(f.Key, val); err != nil {
				return nil, err
			}
		}
	}
	if includeID || !idSetExplicitly {
		if id, ok := d.Get(bson.IDKey); ok && !out.Has(bson.IDKey) {
			// _id keeps its customary leading position.
			withID := bson.NewDoc(out.Len() + 1)
			withID.Set(bson.IDKey, id)
			for _, f := range out.Fields() {
				withID.Set(f.Key, f.Value)
			}
			out = withID
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// $addFields / $set

type addFieldsStage struct{ spec *bson.Doc }

func (s *addFieldsStage) Name() string { return "$addFields" }
func (s *addFieldsStage) Local() bool  { return true }

func (s *addFieldsStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	out := make([]*bson.Doc, 0, len(docs))
	for _, d := range docs {
		nd, err := s.applyDoc(d)
		if err != nil {
			return nil, err
		}
		out = append(out, nd)
	}
	return out, nil
}

func (s *addFieldsStage) applyDoc(d *bson.Doc) (*bson.Doc, error) {
	nd := d.Clone()
	for _, f := range s.spec.Fields() {
		v, err := Evaluate(f.Value, d)
		if err != nil {
			return nil, err
		}
		if err := nd.SetPath(f.Key, v); err != nil {
			return nil, err
		}
	}
	return nd, nil
}

func (s *addFieldsStage) startStream() docStream { return addFieldsStream{s} }

type addFieldsStream struct{ s *addFieldsStage }

func (st addFieldsStream) push(d *bson.Doc, out []*bson.Doc) ([]*bson.Doc, bool, error) {
	nd, err := st.s.applyDoc(d)
	if err != nil {
		return out, false, err
	}
	return append(out, nd), true, nil
}

// ---------------------------------------------------------------------------
// $sort, $limit, $skip

type sortStage struct{ sort query.Sort }

func (s *sortStage) Name() string { return "$sort" }
func (s *sortStage) Local() bool  { return false }

func (s *sortStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	out := append([]*bson.Doc(nil), docs...)
	s.sort.Apply(out)
	return out, nil
}

type limitStage struct{ n int }

func (s *limitStage) Name() string { return "$limit" }
func (s *limitStage) Local() bool  { return false }

func (s *limitStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	if len(docs) > s.n {
		return docs[:s.n], nil
	}
	return docs, nil
}

// $limit streams: it passes documents through and stops the upstream scan
// once n documents have been emitted.
func (s *limitStage) startStream() docStream { return &limitStream{left: s.n} }

type limitStream struct{ left int }

func (st *limitStream) push(d *bson.Doc, out []*bson.Doc) ([]*bson.Doc, bool, error) {
	if st.left <= 0 {
		return out, false, nil
	}
	st.left--
	return append(out, d), st.left > 0, nil
}

type skipStage struct{ n int }

func (s *skipStage) Name() string { return "$skip" }
func (s *skipStage) Local() bool  { return false }

func (s *skipStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	if s.n >= len(docs) {
		return nil, nil
	}
	return docs[s.n:], nil
}

func (s *skipStage) startStream() docStream { return &skipStream{left: s.n} }

type skipStream struct{ left int }

func (st *skipStream) push(d *bson.Doc, out []*bson.Doc) ([]*bson.Doc, bool, error) {
	if st.left > 0 {
		st.left--
		return out, true, nil
	}
	return append(out, d), true, nil
}

// ---------------------------------------------------------------------------
// $unwind

type unwindStage struct {
	path          string
	preserveEmpty bool
}

func (s *unwindStage) Name() string { return "$unwind" }
func (s *unwindStage) Local() bool  { return true }

func (s *unwindStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	var out []*bson.Doc
	var err error
	for _, d := range docs {
		out, err = s.unwindDoc(d, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (s *unwindStage) unwindDoc(d *bson.Doc, out []*bson.Doc) ([]*bson.Doc, error) {
	v, ok := d.GetPath(s.path)
	arr, isArr := v.([]any)
	switch {
	case !ok || (isArr && len(arr) == 0) || v == nil:
		if s.preserveEmpty {
			out = append(out, d)
		}
	case isArr:
		for _, e := range arr {
			nd := d.Clone()
			if err := nd.SetPath(s.path, e); err != nil {
				return nil, err
			}
			out = append(out, nd)
		}
	default:
		// Non-array values pass through unchanged.
		out = append(out, d)
	}
	return out, nil
}

func (s *unwindStage) startStream() docStream { return unwindStream{s} }

type unwindStream struct{ s *unwindStage }

func (st unwindStream) push(d *bson.Doc, out []*bson.Doc) ([]*bson.Doc, bool, error) {
	out, err := st.s.unwindDoc(d, out)
	return out, err == nil, err
}

// ---------------------------------------------------------------------------
// $count

type countStage struct{ field string }

func (s *countStage) Name() string { return "$count" }
func (s *countStage) Local() bool  { return false }

func (s *countStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	return []*bson.Doc{bson.D(s.field, int64(len(docs)))}, nil
}

// ---------------------------------------------------------------------------
// $out

type outStage struct{ target string }

func (s *outStage) Name() string { return "$out" }
func (s *outStage) Local() bool  { return false }

func (s *outStage) Apply(docs []*bson.Doc, env Env) ([]*bson.Doc, error) {
	if env == nil {
		return nil, fmt.Errorf("no environment to write output collection %q", s.target)
	}
	if err := env.WriteCollection(s.target, docs); err != nil {
		return nil, err
	}
	return docs, nil
}

// ---------------------------------------------------------------------------
// $lookup

type lookupStage struct {
	from         string
	localField   string
	foreignField string
	as           string
}

func (s *lookupStage) Name() string { return "$lookup" }
func (s *lookupStage) Local() bool  { return false }

func (s *lookupStage) Apply(docs []*bson.Doc, env Env) ([]*bson.Doc, error) {
	if env == nil {
		return nil, fmt.Errorf("no environment to read collection %q", s.from)
	}
	foreign, err := env.ReadCollection(s.from)
	if err != nil {
		return nil, err
	}
	// Build a hash join table over the foreign collection.
	table := make(map[string][]*bson.Doc, len(foreign))
	keyOf := func(v any) string {
		d := bson.NewDoc(1)
		d.Set("k", v)
		return string(bson.Marshal(d))
	}
	for _, fd := range foreign {
		v, _ := fd.GetPath(s.foreignField)
		table[keyOf(v)] = append(table[keyOf(v)], fd)
	}
	out := make([]*bson.Doc, 0, len(docs))
	for _, d := range docs {
		v, _ := d.GetPath(s.localField)
		matches := table[keyOf(v)]
		nd := d.Clone()
		arr := make([]any, len(matches))
		for i, m := range matches {
			arr[i] = m
		}
		if err := nd.SetPath(s.as, arr); err != nil {
			return nil, err
		}
		out = append(out, nd)
	}
	return out, nil
}
