package aggregate

import (
	"math/rand"
	"testing"

	"docstore/internal/bson"
)

// salesDocs builds a small store_sales-like dataset for pipeline tests.
func salesDocs() []*bson.Doc {
	var docs []*bson.Doc
	items := []string{"item_a", "item_b", "item_c"}
	for i := 0; i < 30; i++ {
		docs = append(docs, bson.D(
			bson.IDKey, i,
			"i_item_id", items[i%3],
			"ss_quantity", i%10,
			"ss_list_price", float64(i%5)+0.5,
			"year", 2000+i%2,
		))
	}
	return docs
}

func runPipeline(t *testing.T, stages []*bson.Doc, docs []*bson.Doc, env Env) []*bson.Doc {
	t.Helper()
	p, err := Parse(stages)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out, err := p.Run(docs, env)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out
}

func TestPipelineMatchGroupSortProject(t *testing.T) {
	// The structural skeleton of the thesis' Query 7 (Appendix B).
	stages := []*bson.Doc{
		bson.D("$match", bson.D("year", 2001)),
		bson.D("$group", bson.D(
			bson.IDKey, "$i_item_id",
			"agg1", bson.D("$avg", "$ss_quantity"),
			"agg2", bson.D("$avg", "$ss_list_price"),
			"cnt", bson.D("$sum", 1),
		)),
		bson.D("$sort", bson.D(bson.IDKey, 1)),
		bson.D("$project", bson.D(
			"i_item_id", "$_id",
			"agg1", 1,
			"agg2", 1,
			"cnt", 1,
		)),
	}
	out := runPipeline(t, stages, salesDocs(), nil)
	if len(out) != 3 {
		t.Fatalf("got %d groups, want 3", len(out))
	}
	// Sorted by _id ascending: item_a, item_b, item_c.
	first := out[0]
	if v, _ := first.Get("i_item_id"); v != "item_a" {
		t.Fatalf("first group = %s", first)
	}
	// Every output group has the four projected fields.
	for _, d := range out {
		for _, k := range []string{"i_item_id", "agg1", "agg2", "cnt"} {
			if !d.Has(k) {
				t.Fatalf("group %s missing %s", d, k)
			}
		}
	}
	// Counts: year 2001 selects odd i (15 docs), one third per item.
	for _, d := range out {
		if v, _ := d.Get("cnt"); v != int64(5) {
			t.Fatalf("group count = %v", v)
		}
	}
}

func TestGroupAccumulators(t *testing.T) {
	docs := []*bson.Doc{
		bson.D("k", "a", "v", 1, "s", "x"),
		bson.D("k", "a", "v", 5, "s", "y"),
		bson.D("k", "b", "v", 10, "s", "z"),
		bson.D("k", "a", "v", 3, "s", "x"),
	}
	stages := []*bson.Doc{
		bson.D("$group", bson.D(
			bson.IDKey, "$k",
			"total", bson.D("$sum", "$v"),
			"avg", bson.D("$avg", "$v"),
			"lo", bson.D("$min", "$v"),
			"hi", bson.D("$max", "$v"),
			"first", bson.D("$first", "$v"),
			"last", bson.D("$last", "$v"),
			"all", bson.D("$push", "$s"),
			"set", bson.D("$addToSet", "$s"),
			"n", bson.D("$count", bson.NewDoc(0)),
		)),
		bson.D("$sort", bson.D(bson.IDKey, 1)),
	}
	out := runPipeline(t, stages, docs, nil)
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	a := out[0]
	checks := map[string]any{
		"total": int64(9), "avg": 3.0, "lo": int64(1), "hi": int64(5),
		"first": int64(1), "last": int64(3), "n": int64(3),
	}
	for k, want := range checks {
		if got, _ := a.Get(k); bson.Compare(got, bson.Normalize(want)) != 0 {
			t.Errorf("group a %s = %v, want %v", k, got, want)
		}
	}
	if all, _ := a.Get("all"); len(all.([]any)) != 3 {
		t.Errorf("push = %v", all)
	}
	if set, _ := a.Get("set"); len(set.([]any)) != 2 {
		t.Errorf("addToSet = %v", set)
	}
	// $sum of a constant counts documents (the "$sum: 1" idiom).
	out = runPipeline(t, []*bson.Doc{
		bson.D("$group", bson.D(bson.IDKey, nil, "n", bson.D("$sum", 1))),
	}, docs, nil)
	if v, _ := out[0].Get("n"); v != int64(4) {
		t.Fatalf("sum 1 = %v", v)
	}
	// Mixed int/float sums become float.
	out = runPipeline(t, []*bson.Doc{
		bson.D("$group", bson.D(bson.IDKey, nil, "s", bson.D("$sum", "$v"))),
	}, []*bson.Doc{bson.D("v", 1), bson.D("v", 2.5)}, nil)
	if v, _ := out[0].Get("s"); v != 3.5 {
		t.Fatalf("mixed sum = %v", v)
	}
	// Non-numeric values are ignored by $sum and $avg.
	out = runPipeline(t, []*bson.Doc{
		bson.D("$group", bson.D(bson.IDKey, nil, "s", bson.D("$sum", "$v"), "a", bson.D("$avg", "$v"))),
	}, []*bson.Doc{bson.D("v", 1), bson.D("v", "oops"), bson.D("v", 3)}, nil)
	if v, _ := out[0].Get("s"); v != int64(4) {
		t.Fatalf("sum ignoring non-numeric = %v", v)
	}
	if v, _ := out[0].Get("a"); v != 2.0 {
		t.Fatalf("avg ignoring non-numeric = %v", v)
	}
	// Empty input produces no groups; avg over zero numeric values is null.
	out = runPipeline(t, []*bson.Doc{
		bson.D("$group", bson.D(bson.IDKey, "$k", "a", bson.D("$avg", "$v"))),
	}, nil, nil)
	if len(out) != 0 {
		t.Fatalf("empty input groups = %d", len(out))
	}
}

func TestGroupByCompositeKey(t *testing.T) {
	// Query 21 groups by {warehouse, item}; Query 46 groups by a 7-field key.
	docs := []*bson.Doc{
		bson.D("w", "W1", "i", "A", "q", 1),
		bson.D("w", "W1", "i", "A", "q", 2),
		bson.D("w", "W1", "i", "B", "q", 4),
		bson.D("w", "W2", "i", "A", "q", 8),
	}
	out := runPipeline(t, []*bson.Doc{
		bson.D("$group", bson.D(
			bson.IDKey, bson.D("w_name", "$w", "i_id", "$i"),
			"total", bson.D("$sum", "$q"),
		)),
		bson.D("$sort", bson.D("_id.w_name", 1, "_id.i_id", 1)),
	}, docs, nil)
	if len(out) != 3 {
		t.Fatalf("groups = %d", len(out))
	}
	if v, _ := out[0].GetPath("_id.w_name"); v != "W1" {
		t.Fatalf("first group = %s", out[0])
	}
	if v, _ := out[0].Get("total"); v != int64(3) {
		t.Fatalf("W1/A total = %v", v)
	}
}

func TestProjectComputedFieldsAndIDExclusion(t *testing.T) {
	docs := []*bson.Doc{bson.D(bson.IDKey, 1, "a", 2, "b", 3, "junk", "x")}
	out := runPipeline(t, []*bson.Doc{
		bson.D("$project", bson.D(
			bson.IDKey, 0,
			"a", 1,
			"sum", bson.D("$add", bson.A("$a", "$b")),
			"renamed", "$b",
		)),
	}, docs, nil)
	d := out[0]
	if d.Has(bson.IDKey) || d.Has("junk") || d.Has("b") {
		t.Fatalf("projection output = %s", d)
	}
	if v, _ := d.Get("sum"); v != int64(5) {
		t.Fatalf("sum = %v", v)
	}
	if v, _ := d.Get("renamed"); v != int64(3) {
		t.Fatalf("renamed = %v", v)
	}
	// Without explicit exclusion _id is kept and leads the document.
	out = runPipeline(t, []*bson.Doc{bson.D("$project", bson.D("a", 1))}, docs, nil)
	if out[0].Keys()[0] != bson.IDKey {
		t.Fatalf("_id should lead: %v", out[0].Keys())
	}
	// Computed _id replaces the original.
	out = runPipeline(t, []*bson.Doc{bson.D("$project", bson.D(bson.IDKey, "$a"))}, docs, nil)
	if v, _ := out[0].Get(bson.IDKey); v != int64(2) {
		t.Fatalf("computed _id = %v", v)
	}
	// Dotted inclusion paths.
	nested := []*bson.Doc{bson.D(bson.IDKey, 1, "sub", bson.D("x", 5, "y", 6))}
	out = runPipeline(t, []*bson.Doc{bson.D("$project", bson.D("sub.x", 1))}, nested, nil)
	if v, ok := out[0].GetPath("sub.x"); !ok || v != int64(5) {
		t.Fatalf("dotted projection = %s", out[0])
	}
	if _, ok := out[0].GetPath("sub.y"); ok {
		t.Fatalf("sub.y should be excluded")
	}
}

func TestAddFieldsStage(t *testing.T) {
	docs := []*bson.Doc{bson.D(bson.IDKey, 1, "a", 2)}
	out := runPipeline(t, []*bson.Doc{
		bson.D("$addFields", bson.D("double", bson.D("$multiply", bson.A("$a", 2)))),
	}, docs, nil)
	if v, _ := out[0].Get("double"); v != int64(4) {
		t.Fatalf("addFields = %s", out[0])
	}
	if !out[0].Has("a") {
		t.Fatalf("$addFields should preserve existing fields")
	}
	// Original document untouched (clone semantics).
	if docs[0].Has("double") {
		t.Fatalf("$addFields mutated its input")
	}
	// $set is an alias.
	out = runPipeline(t, []*bson.Doc{bson.D("$set", bson.D("flag", true))}, docs, nil)
	if v, _ := out[0].Get("flag"); v != true {
		t.Fatalf("$set = %s", out[0])
	}
}

func TestLimitSkipCountUnwind(t *testing.T) {
	docs := salesDocs()
	out := runPipeline(t, []*bson.Doc{bson.D("$limit", 7)}, docs, nil)
	if len(out) != 7 {
		t.Fatalf("limit = %d", len(out))
	}
	out = runPipeline(t, []*bson.Doc{bson.D("$skip", 25)}, docs, nil)
	if len(out) != 5 {
		t.Fatalf("skip = %d", len(out))
	}
	out = runPipeline(t, []*bson.Doc{bson.D("$skip", 100)}, docs, nil)
	if len(out) != 0 {
		t.Fatalf("skip past end = %d", len(out))
	}
	out = runPipeline(t, []*bson.Doc{bson.D("$count", "total")}, docs, nil)
	if v, _ := out[0].Get("total"); v != int64(30) {
		t.Fatalf("count = %v", v)
	}
	// $unwind splits array elements into separate documents.
	nested := []*bson.Doc{
		bson.D(bson.IDKey, 1, "books", bson.A(bson.D("t", "x"), bson.D("t", "y"))),
		bson.D(bson.IDKey, 2, "books", bson.A()),
		bson.D(bson.IDKey, 3),
		bson.D(bson.IDKey, 4, "books", "scalar"),
	}
	out = runPipeline(t, []*bson.Doc{bson.D("$unwind", "$books")}, nested, nil)
	if len(out) != 3 { // 2 from doc 1, 0 from docs 2/3, 1 from doc 4
		t.Fatalf("unwind = %d docs", len(out))
	}
	out = runPipeline(t, []*bson.Doc{
		bson.D("$unwind", bson.D("path", "$books", "preserveNullAndEmptyArrays", true)),
	}, nested, nil)
	if len(out) != 5 {
		t.Fatalf("unwind preserve = %d docs", len(out))
	}
}

func TestOutStageWritesToEnv(t *testing.T) {
	env := NewSliceEnv()
	docs := salesDocs()
	stages := []*bson.Doc{
		bson.D("$match", bson.D("year", 2001)),
		bson.D("$out", "query7_output"),
	}
	p := MustParse(stages)
	if p.OutCollection() != "query7_output" {
		t.Fatalf("OutCollection = %q", p.OutCollection())
	}
	out, err := p.Run(docs, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Collections["query7_output"]) != len(out) {
		t.Fatalf("$out wrote %d docs, returned %d", len(env.Collections["query7_output"]), len(out))
	}
	// Without an Env, $out fails.
	if _, err := p.Run(docs, nil); err == nil {
		t.Fatalf("$out without env should fail")
	}
}

func TestLookupStage(t *testing.T) {
	env := NewSliceEnv()
	env.Collections["item"] = []*bson.Doc{
		bson.D("i_item_sk", 1, "i_item_id", "AAA"),
		bson.D("i_item_sk", 2, "i_item_id", "BBB"),
	}
	sales := []*bson.Doc{
		bson.D(bson.IDKey, 10, "ss_item_sk", 1),
		bson.D(bson.IDKey, 11, "ss_item_sk", 2),
		bson.D(bson.IDKey, 12, "ss_item_sk", 3),
	}
	out := runPipeline(t, []*bson.Doc{
		bson.D("$lookup", bson.D(
			"from", "item",
			"localField", "ss_item_sk",
			"foreignField", "i_item_sk",
			"as", "item_docs",
		)),
	}, sales, env)
	v, _ := out[0].Get("item_docs")
	if len(v.([]any)) != 1 {
		t.Fatalf("lookup join = %v", v)
	}
	v, _ = out[2].Get("item_docs")
	if len(v.([]any)) != 0 {
		t.Fatalf("unmatched lookup = %v", v)
	}
	// Missing foreign collection errors.
	p := MustParse([]*bson.Doc{bson.D("$lookup", bson.D(
		"from", "missing", "localField", "a", "foreignField", "b", "as", "c"))})
	if _, err := p.Run(sales, env); err == nil {
		t.Fatalf("lookup against missing collection should fail")
	}
	if _, err := p.Run(sales, nil); err == nil {
		t.Fatalf("lookup without env should fail")
	}
}

func TestPipelineSplit(t *testing.T) {
	p := MustParse([]*bson.Doc{
		bson.D("$match", bson.D("a", 1)),
		bson.D("$project", bson.D("a", 1)),
		bson.D("$group", bson.D(bson.IDKey, "$a", "n", bson.D("$sum", 1))),
		bson.D("$sort", bson.D("n", -1)),
	})
	shard, merge := p.Split()
	if got := shard.StageNames(); len(got) != 2 || got[0] != "$match" || got[1] != "$project" {
		t.Fatalf("shard stages = %v", got)
	}
	if got := merge.StageNames(); len(got) != 2 || got[0] != "$group" {
		t.Fatalf("merge stages = %v", got)
	}
	// A purely local pipeline has an empty merge part.
	p = MustParse([]*bson.Doc{bson.D("$match", bson.D("a", 1))})
	shard, merge = p.Split()
	if shard.Len() != 1 || merge.Len() != 0 {
		t.Fatalf("split of local pipeline: %d/%d", shard.Len(), merge.Len())
	}
	// A pipeline that begins with $group pushes nothing down.
	p = MustParse([]*bson.Doc{bson.D("$group", bson.D(bson.IDKey, nil, "n", bson.D("$sum", 1)))})
	shard, merge = p.Split()
	if shard.Len() != 0 || merge.Len() != 1 {
		t.Fatalf("split of group-first pipeline: %d/%d", shard.Len(), merge.Len())
	}
}

func TestParseErrors(t *testing.T) {
	bad := [][]*bson.Doc{
		{bson.D("$match", bson.D("a", 1), "$sort", bson.D("a", 1))}, // two operators in one stage
		{bson.D("$match", 5)},
		{bson.D("$match", bson.D("$bogus", 1))},
		{bson.D("$project", 5)},
		{bson.D("$project", bson.NewDoc(0))},
		{bson.D("$group", 5)},
		{bson.D("$group", bson.D("x", bson.D("$sum", 1)))},  // no _id
		{bson.D("$group", bson.D(bson.IDKey, nil, "x", 5))}, // accumulator not a doc
		{bson.D("$group", bson.D(bson.IDKey, nil, "x", bson.D("$bogus", 1)))},
		{bson.D("$sort", bson.D("a", 0))},
		{bson.D("$sort", "x")},
		{bson.D("$limit", -1)},
		{bson.D("$limit", "x")},
		{bson.D("$skip", -2)},
		{bson.D("$skip", bson.D("x", 1))},
		{bson.D("$unwind", "noprefix")},
		{bson.D("$unwind", 5)},
		{bson.D("$unwind", bson.D("path", 5))},
		{bson.D("$count", 5)},
		{bson.D("$count", "")},
		{bson.D("$out", 5)},
		{bson.D("$out", "x"), bson.D("$match", bson.D("a", 1))}, // $out not last
		{bson.D("$lookup", 5)},
		{bson.D("$lookup", bson.D("from", "x"))},
		{bson.D("$lookup", bson.D("from", "x", "localField", "a"))},
		{bson.D("$lookup", bson.D("from", "x", "localField", "a", "foreignField", "b"))},
		{bson.D("$addFields", 5)},
		{bson.D("$frobnicate", bson.D("a", 1))},
	}
	for _, stages := range bad {
		if _, err := Parse(stages); err == nil {
			t.Errorf("Parse(%v) should fail", stages)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustParse([]*bson.Doc{bson.D("$bogus", 1)})
}

func TestRunPropagatesStageErrors(t *testing.T) {
	p := MustParse([]*bson.Doc{
		bson.D("$project", bson.D("bad", bson.D("$divide", bson.A(1, 0)))),
	})
	if _, err := p.Run(salesDocs(), nil); err == nil {
		t.Fatalf("stage error should propagate")
	}
}

func TestSliceEnv(t *testing.T) {
	env := &SliceEnv{}
	if err := env.WriteCollection("a", []*bson.Doc{bson.D("x", 1)}); err != nil {
		t.Fatal(err)
	}
	docs, err := env.ReadCollection("a")
	if err != nil || len(docs) != 1 {
		t.Fatalf("ReadCollection: %v %v", docs, err)
	}
	if _, err := env.ReadCollection("missing"); err == nil {
		t.Fatalf("missing collection should error")
	}
}

// TestGroupSumMatchesDirectComputationProperty checks $group/$sum against a
// direct fold for random inputs.
func TestGroupSumMatchesDirectComputationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		docs := make([]*bson.Doc, n)
		direct := map[string]int64{}
		for i := 0; i < n; i++ {
			k := string(rune('a' + r.Intn(5)))
			v := int64(r.Intn(100))
			docs[i] = bson.D("k", k, "v", v)
			direct[k] += v
		}
		out := runPipeline(t, []*bson.Doc{
			bson.D("$group", bson.D(bson.IDKey, "$k", "total", bson.D("$sum", "$v"))),
		}, docs, nil)
		if len(out) != len(direct) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(out), len(direct))
		}
		for _, g := range out {
			id, _ := g.Get(bson.IDKey)
			total, _ := g.Get("total")
			if total != direct[id.(string)] {
				t.Fatalf("trial %d: group %v total %v, want %v", trial, id, total, direct[id.(string)])
			}
		}
	}
}
