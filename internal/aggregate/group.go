package aggregate

import (
	"fmt"
	"sort"

	"docstore/internal/bson"
)

// groupStage implements $group: documents are bucketed by the value of the
// _id expression and each accumulator folds over the bucket's documents.
type groupStage struct {
	idExpr       any
	accumulators []accumulatorSpec
}

type accumulatorSpec struct {
	field string
	op    string
	expr  any
}

var supportedAccumulators = map[string]bool{
	"$sum": true, "$avg": true, "$min": true, "$max": true,
	"$first": true, "$last": true, "$push": true, "$addToSet": true,
	"$count": true,
}

func parseGroupStage(spec *bson.Doc) (Stage, error) {
	idExpr, ok := spec.Get(bson.IDKey)
	if !ok {
		return nil, fmt.Errorf("$group requires an _id expression")
	}
	g := &groupStage{idExpr: idExpr}
	for _, f := range spec.Fields() {
		if f.Key == bson.IDKey {
			continue
		}
		accDoc, ok := f.Value.(*bson.Doc)
		if !ok || accDoc.Len() != 1 {
			return nil, fmt.Errorf("accumulator for %q must be a single-operator document", f.Key)
		}
		op := accDoc.Fields()[0].Key
		if !supportedAccumulators[op] {
			return nil, fmt.Errorf("unknown accumulator %s for %q", op, f.Key)
		}
		g.accumulators = append(g.accumulators, accumulatorSpec{
			field: f.Key,
			op:    op,
			expr:  accDoc.Fields()[0].Value,
		})
	}
	return g, nil
}

func (s *groupStage) Name() string { return "$group" }
func (s *groupStage) Local() bool  { return false }

// groupBucket accumulates state for one distinct _id value.
type groupBucket struct {
	id    any
	order int
	accs  []accumulatorState
}

type accumulatorState struct {
	sum      float64
	sumIsInt bool
	count    int64
	min, max any
	hasMin   bool
	first    any
	hasFirst bool
	last     any
	values   []any
}

func (s *groupStage) Apply(docs []*bson.Doc, _ Env) ([]*bson.Doc, error) {
	acc := s.startAccum().(*groupAccum)
	for _, d := range docs {
		if err := acc.absorb(d); err != nil {
			return nil, err
		}
	}
	return acc.finish()
}

// startAccum lets $group consume a document stream incrementally: the hash
// table of buckets is the only state kept, so a streamed group holds
// O(groups) memory instead of O(input)+O(groups).
func (s *groupStage) startAccum() docAccum {
	return &groupAccum{s: s, buckets: make(map[string]*groupBucket)}
}

type groupAccum struct {
	s            *groupStage
	buckets      map[string]*groupBucket
	orderCounter int
}

func (a *groupAccum) absorb(d *bson.Doc) error {
	s := a.s
	idVal, err := Evaluate(s.idExpr, d)
	if err != nil {
		return err
	}
	key := canonicalKey(idVal)
	b, ok := a.buckets[key]
	if !ok {
		b = &groupBucket{id: idVal, order: a.orderCounter, accs: make([]accumulatorState, len(s.accumulators))}
		for i := range b.accs {
			b.accs[i].sumIsInt = true
		}
		a.orderCounter++
		a.buckets[key] = b
	}
	for i, acc := range s.accumulators {
		if err := b.accs[i].fold(acc, d); err != nil {
			return err
		}
	}
	return nil
}

func (a *groupAccum) finish() ([]*bson.Doc, error) {
	s := a.s
	// Deterministic output: buckets in first-seen order.
	ordered := make([]*groupBucket, 0, len(a.buckets))
	for _, b := range a.buckets {
		ordered = append(ordered, b)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })

	out := make([]*bson.Doc, 0, len(ordered))
	for _, b := range ordered {
		d := bson.NewDoc(len(s.accumulators) + 1)
		d.Set(bson.IDKey, b.id)
		for i, acc := range s.accumulators {
			d.Set(acc.field, b.accs[i].result(acc))
		}
		out = append(out, d)
	}
	return out, nil
}

func (st *accumulatorState) fold(spec accumulatorSpec, d *bson.Doc) error {
	switch spec.op {
	case "$count":
		st.count++
		return nil
	}
	v, err := Evaluate(spec.expr, d)
	if err != nil {
		return err
	}
	switch spec.op {
	case "$sum":
		if f, ok := bson.AsFloat(v); ok {
			st.sum += f
			if _, isInt := v.(int64); !isInt {
				st.sumIsInt = false
			}
			st.count++
		}
	case "$avg":
		if f, ok := bson.AsFloat(v); ok {
			st.sum += f
			st.count++
		}
	case "$min":
		if v == nil {
			return nil
		}
		if !st.hasMin || bson.Compare(v, st.min) < 0 {
			st.min = v
			st.hasMin = true
		}
	case "$max":
		if v == nil {
			return nil
		}
		if !st.hasMin || bson.Compare(v, st.max) > 0 {
			st.max = v
			st.hasMin = true
		}
	case "$first":
		if !st.hasFirst {
			st.first = v
			st.hasFirst = true
		}
	case "$last":
		st.last = v
		st.hasFirst = true
	case "$push":
		st.values = append(st.values, v)
	case "$addToSet":
		for _, existing := range st.values {
			if bson.Compare(existing, v) == 0 {
				return nil
			}
		}
		st.values = append(st.values, v)
	}
	return nil
}

func (st *accumulatorState) result(spec accumulatorSpec) any {
	switch spec.op {
	case "$sum":
		if st.sumIsInt {
			return int64(st.sum)
		}
		return st.sum
	case "$count":
		return st.count
	case "$avg":
		if st.count == 0 {
			return nil
		}
		return st.sum / float64(st.count)
	case "$min":
		return st.min
	case "$max":
		return st.max
	case "$first":
		return st.first
	case "$last":
		return st.last
	case "$push", "$addToSet":
		if st.values == nil {
			return []any{}
		}
		return st.values
	default:
		return nil
	}
}

// canonicalKey produces a hashable string for a group key value.
func canonicalKey(v any) string {
	d := bson.NewDoc(1)
	d.Set("k", v)
	return string(bson.Marshal(d))
}
