package aggregate

import (
	"testing"

	"docstore/internal/bson"
)

func evalOK(t *testing.T, expr any, doc *bson.Doc) any {
	t.Helper()
	v, err := Evaluate(expr, doc)
	if err != nil {
		t.Fatalf("Evaluate(%v): %v", expr, err)
	}
	return v
}

func TestEvaluateFieldPathsAndLiterals(t *testing.T) {
	doc := bson.D("a", 5, "nested", bson.D("x", "hello"), "f", 2.5)
	if v := evalOK(t, "$a", doc); v != int64(5) {
		t.Fatalf("$a = %v", v)
	}
	if v := evalOK(t, "$nested.x", doc); v != "hello" {
		t.Fatalf("$nested.x = %v", v)
	}
	if v := evalOK(t, "$missing", doc); v != nil {
		t.Fatalf("$missing = %v", v)
	}
	if v := evalOK(t, "plain string", doc); v != "plain string" {
		t.Fatalf("literal string = %v", v)
	}
	if v := evalOK(t, 42, doc); v != int64(42) {
		t.Fatalf("literal int = %v", v)
	}
	if v := evalOK(t, bson.D("$literal", "$a"), doc); v != "$a" {
		t.Fatalf("$literal = %v", v)
	}
	// Document literal: every value evaluated.
	v := evalOK(t, bson.D("orig", "$a", "twice", bson.D("$multiply", bson.A("$a", 2))), doc)
	d := v.(*bson.Doc)
	if got, _ := d.Get("orig"); got != int64(5) {
		t.Fatalf("doc literal orig = %v", got)
	}
	if got, _ := d.Get("twice"); got != int64(10) {
		t.Fatalf("doc literal twice = %v", got)
	}
	// Array literal.
	arr := evalOK(t, bson.A("$a", 1), doc).([]any)
	if arr[0] != int64(5) || arr[1] != int64(1) {
		t.Fatalf("array literal = %v", arr)
	}
}

func TestEvaluateArithmetic(t *testing.T) {
	doc := bson.D("i", 10, "f", 2.5, "neg", -3)
	cases := []struct {
		expr any
		want any
	}{
		{bson.D("$add", bson.A("$i", 5)), int64(15)},
		{bson.D("$add", bson.A("$i", "$f")), 12.5},
		{bson.D("$subtract", bson.A("$i", 3)), int64(7)},
		{bson.D("$subtract", bson.A("$i", 0.5)), 9.5},
		{bson.D("$multiply", bson.A("$i", 3)), int64(30)},
		{bson.D("$multiply", bson.A("$f", 2)), 5.0},
		{bson.D("$divide", bson.A("$i", 4)), 2.5},
		{bson.D("$mod", bson.A("$i", 3)), int64(1)},
		{bson.D("$abs", "$neg"), int64(3)},
		{bson.D("$floor", "$f"), int64(2)},
		{bson.D("$ceil", "$f"), int64(3)},
		{bson.D("$trunc", "$f"), int64(2)},
		{bson.D("$sqrt", bson.A(16)), 4.0},
		{bson.D("$pow", bson.A(2, 10)), 1024.0},
	}
	for _, c := range cases {
		if got := evalOK(t, c.expr, doc); bson.Compare(got, bson.Normalize(c.want)) != 0 {
			t.Errorf("%v = %v (%T), want %v", c.expr, got, got, c.want)
		}
	}
	// Null propagation.
	if v := evalOK(t, bson.D("$add", bson.A("$missing", 1)), doc); v != nil {
		t.Errorf("add with null = %v", v)
	}
	if v := evalOK(t, bson.D("$subtract", bson.A("$missing", 1)), doc); v != nil {
		t.Errorf("subtract with null = %v", v)
	}
	if v := evalOK(t, bson.D("$abs", "$missing"), doc); v != nil {
		t.Errorf("abs of null = %v", v)
	}
	// Errors.
	bad := []any{
		bson.D("$divide", bson.A(1, 0)),
		bson.D("$mod", bson.A(1, 0)),
		bson.D("$divide", bson.A(1)),
		bson.D("$divide", bson.A("x", 1)),
		bson.D("$add", bson.A("x", 1)),
		bson.D("$sqrt", bson.A(-1)),
		bson.D("$abs", bson.A("x")),
		bson.D("$frobnicate", 1),
	}
	for _, expr := range bad {
		if _, err := Evaluate(expr, doc); err == nil {
			t.Errorf("Evaluate(%v) should fail", expr)
		}
	}
}

func TestEvaluateComparisonsAndLogic(t *testing.T) {
	doc := bson.D("a", 5, "b", 7, "s", "x")
	cases := []struct {
		expr any
		want any
	}{
		{bson.D("$eq", bson.A("$a", 5)), true},
		{bson.D("$ne", bson.A("$a", 5)), false},
		{bson.D("$gt", bson.A("$b", "$a")), true},
		{bson.D("$gte", bson.A("$a", "$a")), true},
		{bson.D("$lt", bson.A("$b", "$a")), false},
		{bson.D("$lte", bson.A("$a", 4)), false},
		{bson.D("$cmp", bson.A("$a", "$b")), int64(-1)},
		{bson.D("$and", bson.A(true, 1, "x")), true},
		{bson.D("$and", bson.A(true, 0)), false},
		{bson.D("$or", bson.A(false, 0, nil)), false},
		{bson.D("$or", bson.A(false, "$a")), true},
		{bson.D("$not", bson.A(false)), true},
		{bson.D("$not", bson.A("$a")), false},
	}
	for _, c := range cases {
		if got := evalOK(t, c.expr, doc); bson.Compare(got, bson.Normalize(c.want)) != 0 {
			t.Errorf("%v = %v, want %v", c.expr, got, c.want)
		}
	}
	if _, err := Evaluate(bson.D("$eq", bson.A(1)), doc); err == nil {
		t.Errorf("$eq with one argument should fail")
	}
	if _, err := Evaluate(bson.D("$not", bson.A(1, 2)), doc); err == nil {
		t.Errorf("$not with two arguments should fail")
	}
}

func TestEvaluateCond(t *testing.T) {
	// The shape used by Query 21 and Query 50: conditional sums.
	doc := bson.D("d_date", "2002-06-01", "qty", 40)
	arrayForm := bson.D("$cond", bson.A(
		bson.D("$lt", bson.A("$d_date", "2002-05-29")),
		"$qty",
		0,
	))
	if v := evalOK(t, arrayForm, doc); v != int64(0) {
		t.Fatalf("array-form cond = %v", v)
	}
	docForm := bson.D("$cond", bson.D(
		"if", bson.D("$gte", bson.A("$d_date", "2002-05-29")),
		"then", "$qty",
		"else", 0,
	))
	if v := evalOK(t, docForm, doc); v != int64(40) {
		t.Fatalf("doc-form cond = %v", v)
	}
	if _, err := Evaluate(bson.D("$cond", bson.A(1, 2)), doc); err == nil {
		t.Fatalf("$cond with two elements should fail")
	}
	if _, err := Evaluate(bson.D("$cond", bson.D("if", true, "then", 1)), doc); err == nil {
		t.Fatalf("$cond missing else should fail")
	}
	if _, err := Evaluate(bson.D("$cond", 5), doc); err == nil {
		t.Fatalf("$cond with scalar should fail")
	}
}

func TestEvaluateStringAndArrayOperators(t *testing.T) {
	doc := bson.D("first", "Earl", "last", "Garrison", "tags", bson.A("a", "b"))
	if v := evalOK(t, bson.D("$concat", bson.A("$first", " ", "$last")), doc); v != "Earl Garrison" {
		t.Fatalf("$concat = %v", v)
	}
	if v := evalOK(t, bson.D("$concat", bson.A("$first", "$missing")), doc); v != nil {
		t.Fatalf("$concat with null = %v", v)
	}
	if _, err := Evaluate(bson.D("$concat", bson.A("a", 5)), doc); err == nil {
		t.Fatalf("$concat with number should fail")
	}
	if v := evalOK(t, bson.D("$toUpper", "$first"), doc); v != "EARL" {
		t.Fatalf("$toUpper = %v", v)
	}
	if v := evalOK(t, bson.D("$toLower", "$first"), doc); v != "earl" {
		t.Fatalf("$toLower = %v", v)
	}
	if v := evalOK(t, bson.D("$size", "$tags"), doc); v != int64(2) {
		t.Fatalf("$size = %v", v)
	}
	if _, err := Evaluate(bson.D("$size", "$first"), doc); err == nil {
		t.Fatalf("$size of string should fail")
	}
	if v := evalOK(t, bson.D("$ifNull", bson.A("$missing", "fallback")), doc); v != "fallback" {
		t.Fatalf("$ifNull = %v", v)
	}
	if v := evalOK(t, bson.D("$ifNull", bson.A("$first", "fallback")), doc); v != "Earl" {
		t.Fatalf("$ifNull non-null = %v", v)
	}
	if _, err := Evaluate(bson.D("$ifNull", bson.A(1)), doc); err == nil {
		t.Fatalf("$ifNull with one argument should fail")
	}
	if v := evalOK(t, bson.D("$in", bson.A("b", "$tags")), doc); v != true {
		t.Fatalf("$in = %v", v)
	}
	if v := evalOK(t, bson.D("$in", bson.A("z", "$tags")), doc); v != false {
		t.Fatalf("$in miss = %v", v)
	}
	if _, err := Evaluate(bson.D("$in", bson.A("z", "$first")), doc); err == nil {
		t.Fatalf("$in with non-array should fail")
	}
}

func TestMustEvaluatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustEvaluate(bson.D("$divide", bson.A(1, 0)), bson.NewDoc(0))
}

func TestEvaluateErrorPropagationThroughContainers(t *testing.T) {
	doc := bson.NewDoc(0)
	if _, err := Evaluate(bson.D("x", bson.D("$divide", bson.A(1, 0))), doc); err == nil {
		t.Fatalf("error inside document literal should propagate")
	}
	if _, err := Evaluate(bson.A(bson.D("$divide", bson.A(1, 0))), doc); err == nil {
		t.Fatalf("error inside array literal should propagate")
	}
	if _, err := Evaluate(bson.D("$and", bson.A(bson.D("$bogus", 1))), doc); err == nil {
		t.Fatalf("error inside logical args should propagate")
	}
	if _, err := Evaluate(bson.D("$cond", bson.A(bson.D("$bogus", 1), 1, 2)), doc); err == nil {
		t.Fatalf("error inside cond should propagate")
	}
}
