package aggregate

import (
	"fmt"
	"testing"

	"docstore/internal/bson"
)

func iterTestDocs(n int) []*bson.Doc {
	docs := make([]*bson.Doc, 0, n)
	for i := 0; i < n; i++ {
		var tags []any
		for j := 0; j <= i%3; j++ {
			tags = append(tags, fmt.Sprintf("t%d", j))
		}
		docs = append(docs, bson.D(
			bson.IDKey, i,
			"g", i%5,
			"v", i,
			"tags", tags,
		))
	}
	return docs
}

// TestRunIterMatchesRun asserts the streaming execution produces exactly the
// documents of the slice execution for pipelines covering every stage class:
// streamable, accumulating ($group) and blocking ($sort, $count, $lookup).
func TestRunIterMatchesRun(t *testing.T) {
	docs := iterTestDocs(200)
	env := NewSliceEnv()
	env.Collections["dims"] = []*bson.Doc{
		bson.D(bson.IDKey, 0, "g", 0, "label", "zero"),
		bson.D(bson.IDKey, 1, "g", 1, "label", "one"),
	}
	pipelines := map[string][]*bson.Doc{
		"match":           {bson.D("$match", bson.D("g", 2))},
		"match+project":   {bson.D("$match", bson.D("g", bson.D("$lt", 3))), bson.D("$project", bson.D("v", 1))},
		"addFields":       {bson.D("$addFields", bson.D("vv", bson.D("$multiply", bson.A("$v", int64(2)))))},
		"unwind":          {bson.D("$unwind", "$tags")},
		"unwind+group":    {bson.D("$unwind", "$tags"), bson.D("$group", bson.D(bson.IDKey, "$tags", "n", bson.D("$sum", 1)))},
		"skip+limit":      {bson.D("$skip", 10), bson.D("$limit", 20)},
		"group+sort":      {bson.D("$group", bson.D(bson.IDKey, "$g", "avg", bson.D("$avg", "$v"))), bson.D("$sort", bson.D(bson.IDKey, 1))},
		"sort+skip+limit": {bson.D("$sort", bson.D("v", -1)), bson.D("$skip", 5), bson.D("$limit", 7)},
		"count":           {bson.D("$match", bson.D("g", bson.D("$gte", 1))), bson.D("$count", "n")},
		"lookup":          {bson.D("$limit", 10), bson.D("$lookup", bson.D("from", "dims", "localField", "g", "foreignField", "g", "as", "dim"))},
		"limit after group": {
			bson.D("$group", bson.D(bson.IDKey, "$g", "n", bson.D("$sum", 1))),
			bson.D("$limit", 2),
		},
	}
	for name, stageDocs := range pipelines {
		t.Run(name, func(t *testing.T) {
			p, err := Parse(stageDocs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.Run(docs, env)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Drain(p.RunIter(FromSlice(docs), env))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("iterator produced %d docs, slice produced %d", len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("doc %d differs:\n got  %v\n want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// countingIter counts how many documents downstream stages pulled.
type countingIter struct {
	docs   []*bson.Doc
	pos    int
	pulled int
	closed bool
}

func (it *countingIter) Next() (*bson.Doc, bool) {
	if it.pos >= len(it.docs) {
		return nil, false
	}
	d := it.docs[it.pos]
	it.pos++
	it.pulled++
	return d, true
}

func (it *countingIter) Err() error { return nil }
func (it *countingIter) Close()     { it.closed = true }

// TestLimitStopsUpstream checks the streamable prefix is actually lazy: a
// $limit must stop pulling from its source once satisfied, and close it.
func TestLimitStopsUpstream(t *testing.T) {
	src := &countingIter{docs: iterTestDocs(1000)}
	p := MustParse([]*bson.Doc{
		bson.D("$match", bson.D("g", bson.D("$gte", 0))),
		bson.D("$limit", 10),
	})
	got, err := Drain(p.RunIter(src, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d docs, want 10", len(got))
	}
	if src.pulled > 11 {
		t.Fatalf("$limit pulled %d source docs, expected ~10", src.pulled)
	}
	if !src.closed {
		t.Fatal("$limit did not close its upstream")
	}
}

// TestIteratorErrorPropagation checks stage errors surface through Err with
// the same wrapping Run produces.
func TestIteratorErrorPropagation(t *testing.T) {
	docs := []*bson.Doc{bson.D("v", "not-a-number")}
	p := MustParse([]*bson.Doc{
		bson.D("$project", bson.D("bad", bson.D("$divide", bson.A("$v", int64(0))))),
	})
	_, runErr := p.Run(docs, nil)
	if runErr == nil {
		t.Fatal("expected slice Run to fail")
	}
	it := p.RunIter(FromSlice(docs), nil)
	if _, ok := it.Next(); ok {
		t.Fatal("expected streaming Next to fail")
	}
	if it.Err() == nil {
		t.Fatal("expected streaming Err to be set")
	}
	if it.Err().Error() != runErr.Error() {
		t.Fatalf("error mismatch:\n iter: %v\n run:  %v", it.Err(), runErr)
	}
}
