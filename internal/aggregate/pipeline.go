package aggregate

import (
	"fmt"

	"docstore/internal/bson"
)

// Env gives pipeline stages access to other collections: $lookup reads a
// foreign collection and $out writes the final result collection. A nil Env
// is valid for pipelines that use neither.
type Env interface {
	// ReadCollection returns every document of the named collection.
	ReadCollection(name string) ([]*bson.Doc, error)
	// WriteCollection replaces the named collection with the given documents,
	// creating it when missing ($out semantics).
	WriteCollection(name string, docs []*bson.Doc) error
}

// Stage is a single pipeline stage.
type Stage interface {
	// Name returns the stage operator, e.g. "$match".
	Name() string
	// Apply transforms the document stream.
	Apply(docs []*bson.Doc, env Env) ([]*bson.Doc, error)
	// Local reports whether the stage operates on each document independently
	// (no cross-document state), which lets the query router push it down to
	// shards.
	Local() bool
}

// Pipeline is a parsed aggregation pipeline.
type Pipeline struct {
	stages []Stage
	out    string // $out target collection, "" when absent
}

// Parse compiles a pipeline definition — a list of single-stage documents —
// into a Pipeline.
func Parse(stageDocs []*bson.Doc) (*Pipeline, error) {
	p := &Pipeline{}
	for i, sd := range stageDocs {
		if sd.Len() != 1 {
			return nil, fmt.Errorf("aggregate: stage %d must contain exactly one operator, got %d", i, sd.Len())
		}
		f := sd.Fields()[0]
		stage, err := parseStage(f.Key, f.Value)
		if err != nil {
			return nil, fmt.Errorf("aggregate: stage %d (%s): %w", i, f.Key, err)
		}
		if i != len(stageDocs)-1 {
			if _, isOut := stage.(*outStage); isOut {
				return nil, fmt.Errorf("aggregate: $out must be the final stage")
			}
		}
		if o, isOut := stage.(*outStage); isOut {
			p.out = o.target
		}
		p.stages = append(p.stages, stage)
	}
	return p, nil
}

// MustParse is Parse but panics on error; for the statically known benchmark
// pipelines.
func MustParse(stageDocs []*bson.Doc) *Pipeline {
	p, err := Parse(stageDocs)
	if err != nil {
		panic(err)
	}
	return p
}

// Stages returns the parsed stage list.
func (p *Pipeline) Stages() []Stage { return p.stages }

// OutCollection returns the $out target collection name, or "".
func (p *Pipeline) OutCollection() string { return p.out }

// Run executes the pipeline over the input documents. It is a thin wrapper
// over the streaming execution: the input is served from a slice and the
// output drained back into one, so callers see the historical materializing
// behaviour while the stages in between stream.
func (p *Pipeline) Run(docs []*bson.Doc, env Env) ([]*bson.Doc, error) {
	return Drain(p.RunIter(FromSlice(docs), env))
}

// Split partitions the pipeline for sharded execution: the shard part is the
// longest prefix of per-document ("local") stages which each shard can run
// independently; the merge part is the remainder, run by the query router
// over the concatenated shard results. This mirrors how the thesis' sharded
// experiments aggregate partial results at the mongos (§4.3 observation ii).
func (p *Pipeline) Split() (shard, merge *Pipeline) {
	cut := 0
	for _, s := range p.stages {
		if !s.Local() {
			break
		}
		cut++
	}
	return &Pipeline{stages: p.stages[:cut]}, &Pipeline{stages: p.stages[cut:], out: p.out}
}

// Len returns the number of stages.
func (p *Pipeline) Len() int { return len(p.stages) }

// Tail returns the pipeline with its first n stages removed, preserving the
// $out target. It lets callers push a leading $match down into the storage
// engine without re-parsing the remaining stages.
func (p *Pipeline) Tail(n int) *Pipeline {
	if n <= 0 {
		return p
	}
	if n > len(p.stages) {
		n = len(p.stages)
	}
	return &Pipeline{stages: p.stages[n:], out: p.out}
}

// StageNames lists the stage operators in order.
func (p *Pipeline) StageNames() []string {
	names := make([]string, len(p.stages))
	for i, s := range p.stages {
		names[i] = s.Name()
	}
	return names
}

// SliceEnv is a trivial Env backed by an in-memory map of collections;
// useful in tests and for running merge pipelines on the query router where
// $out targets the router's result staging area.
type SliceEnv struct {
	Collections map[string][]*bson.Doc
}

// NewSliceEnv returns an empty SliceEnv.
func NewSliceEnv() *SliceEnv {
	return &SliceEnv{Collections: make(map[string][]*bson.Doc)}
}

// ReadCollection implements Env.
func (e *SliceEnv) ReadCollection(name string) ([]*bson.Doc, error) {
	docs, ok := e.Collections[name]
	if !ok {
		return nil, fmt.Errorf("aggregate: collection %q not found", name)
	}
	return docs, nil
}

// WriteCollection implements Env.
func (e *SliceEnv) WriteCollection(name string, docs []*bson.Doc) error {
	if e.Collections == nil {
		e.Collections = make(map[string][]*bson.Doc)
	}
	e.Collections[name] = docs
	return nil
}
