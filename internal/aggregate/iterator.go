package aggregate

import (
	"fmt"

	"docstore/internal/bson"
)

// Iterator is the streaming document interface the pipeline engine executes
// over. Stages that operate per document ($match, $project, $addFields,
// $unwind, $limit, $skip) transform iterators without materializing their
// input; blocking stages ($sort, $lookup, $out, $count) drain their input
// first; $group consumes its input incrementally and materializes only its
// buckets. The same interface is implemented by the storage layer's cursors
// (via an adapter) and by the query router's shard-merge cursors, so a whole
// query can stream end to end until its first blocking stage.
type Iterator interface {
	// Next returns the next document, or (nil, false) once the stream ends.
	Next() (*bson.Doc, bool)
	// Err returns the error that terminated the stream, if any. It is only
	// meaningful after Next has returned false.
	Err() error
	// Close releases the iterator's resources. It is safe to call multiple
	// times and after exhaustion.
	Close()
}

// sliceIter serves documents from a materialized slice.
type sliceIter struct {
	docs []*bson.Doc
	pos  int
}

// FromSlice wraps a document slice in an Iterator.
func FromSlice(docs []*bson.Doc) Iterator { return &sliceIter{docs: docs} }

func (it *sliceIter) Next() (*bson.Doc, bool) {
	if it.pos >= len(it.docs) {
		return nil, false
	}
	d := it.docs[it.pos]
	it.pos++
	return d, true
}

func (it *sliceIter) Err() error { return nil }
func (it *sliceIter) Close()     { it.docs = nil; it.pos = 0 }

// Drain consumes the iterator into a slice and closes it.
func Drain(it Iterator) ([]*bson.Doc, error) {
	defer it.Close()
	var out []*bson.Doc
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	return out, it.Err()
}

// docStream is per-run state for a streamable stage: push feeds it one input
// document and collects zero or more output documents. The bool result
// reports whether the stage wants more input; false lets $limit stop the
// upstream scan early.
type docStream interface {
	push(d *bson.Doc, out []*bson.Doc) ([]*bson.Doc, bool, error)
}

// streamableStage is implemented by stages that process documents one at a
// time with no cross-document state beyond a per-run counter.
type streamableStage interface {
	Stage
	startStream() docStream
}

// accumulatingStage is implemented by stages that consume their input
// incrementally but only emit once the input is exhausted ($group): the
// stream stays O(batch)+O(state) instead of materializing the input.
type accumulatingStage interface {
	Stage
	startAccum() docAccum
}

type docAccum interface {
	absorb(d *bson.Doc) error
	finish() ([]*bson.Doc, error)
}

// stageIter applies a docStream to an upstream iterator.
type stageIter struct {
	name string
	src  Iterator
	st   docStream
	buf  []*bson.Doc
	pos  int
	err  error
	done bool
}

func (it *stageIter) Next() (*bson.Doc, bool) {
	for {
		if it.pos < len(it.buf) {
			d := it.buf[it.pos]
			it.pos++
			return d, true
		}
		if it.done {
			return nil, false
		}
		d, ok := it.src.Next()
		if !ok {
			it.done = true
			it.err = it.src.Err()
			return nil, false
		}
		it.buf = it.buf[:0]
		it.pos = 0
		out, more, err := it.st.push(d, it.buf)
		it.buf = out
		if err != nil {
			it.done = true
			it.err = fmt.Errorf("aggregate: %s: %w", it.name, err)
			return nil, false
		}
		if !more {
			it.done = true
			it.src.Close()
		}
	}
}

func (it *stageIter) Err() error { return it.err }
func (it *stageIter) Close() {
	it.done = true
	it.buf = nil
	it.src.Close()
}

// accumIter feeds an upstream iterator into a docAccum and serves the
// finished output.
type accumIter struct {
	name string
	src  Iterator
	acc  docAccum
	out  []*bson.Doc
	pos  int
	err  error
	done bool
}

func (it *accumIter) Next() (*bson.Doc, bool) {
	if it.acc != nil {
		for {
			d, ok := it.src.Next()
			if !ok {
				break
			}
			if err := it.acc.absorb(d); err != nil {
				it.err = fmt.Errorf("aggregate: %s: %w", it.name, err)
				it.done = true
				it.acc = nil
				it.src.Close()
				return nil, false
			}
		}
		if err := it.src.Err(); err != nil {
			it.err = err
			it.done = true
			it.acc = nil
			return nil, false
		}
		out, err := it.acc.finish()
		it.acc = nil
		if err != nil {
			it.err = fmt.Errorf("aggregate: %s: %w", it.name, err)
			it.done = true
			return nil, false
		}
		it.out = out
	}
	if it.done || it.pos >= len(it.out) {
		return nil, false
	}
	d := it.out[it.pos]
	it.pos++
	return d, true
}

func (it *accumIter) Err() error { return it.err }
func (it *accumIter) Close() {
	it.done = true
	it.acc = nil
	it.out = nil
	it.src.Close()
}

// blockingIter drains its upstream, applies a slice-based stage, and serves
// the result — the materialization point for $sort, $lookup, $out and
// $count.
type blockingIter struct {
	name    string
	src     Iterator
	stage   Stage
	env     Env
	out     []*bson.Doc
	pos     int
	err     error
	started bool
	done    bool
}

func (it *blockingIter) Next() (*bson.Doc, bool) {
	if !it.started {
		it.started = true
		docs, err := Drain(it.src)
		if err != nil {
			it.err = err
			it.done = true
			return nil, false
		}
		out, err := it.stage.Apply(docs, it.env)
		if err != nil {
			it.err = fmt.Errorf("aggregate: %s: %w", it.name, err)
			it.done = true
			return nil, false
		}
		it.out = out
	}
	if it.done || it.pos >= len(it.out) {
		return nil, false
	}
	d := it.out[it.pos]
	it.pos++
	return d, true
}

func (it *blockingIter) Err() error { return it.err }
func (it *blockingIter) Close() {
	it.done = true
	it.out = nil
	it.src.Close()
}

// RunIter builds the streaming execution of the pipeline over the input
// iterator. Per-document stages stream, $group accumulates incrementally,
// and every other stage materializes at its position in the chain. Errors
// surface through the returned iterator's Err after Next returns false.
func (p *Pipeline) RunIter(input Iterator, env Env) Iterator {
	it := input
	for _, s := range p.stages {
		switch st := s.(type) {
		case streamableStage:
			it = &stageIter{name: s.Name(), src: it, st: st.startStream()}
		case accumulatingStage:
			it = &accumIter{name: s.Name(), src: it, acc: st.startAccum()}
		default:
			it = &blockingIter{name: s.Name(), src: it, stage: s, env: env}
		}
	}
	return it
}
