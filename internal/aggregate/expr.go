// Package aggregate implements the aggregation-pipeline framework of the
// document store: the staged document-processing pipeline of §4.1.3.1 with
// the stages and operators the thesis' queries use ($match, $group, $project,
// $sort, $limit, $skip, $unwind, $count, $out, $lookup and the accumulator
// and arithmetic/conditional expression operators of Table 4.2).
package aggregate

import (
	"fmt"
	"math"
	"strings"

	"docstore/internal/bson"
)

// Evaluate computes an aggregation expression against a document.
//
// Expression forms:
//   - "$a.b"            field path reference
//   - scalar literals   returned as-is
//   - {"$op": args}     operator expression
//   - {k: expr, ...}    document literal whose values are evaluated
//   - [expr, ...]       array literal whose elements are evaluated
func Evaluate(expr any, doc *bson.Doc) (any, error) {
	switch t := expr.(type) {
	case string:
		if strings.HasPrefix(t, "$") {
			path := strings.TrimPrefix(t, "$")
			v, ok := doc.GetPath(path)
			if !ok {
				return nil, nil
			}
			return v, nil
		}
		return t, nil
	case *bson.Doc:
		if op, arg, ok := singleOperator(t); ok {
			return evalOperator(op, arg, doc)
		}
		out := bson.NewDoc(t.Len())
		for _, f := range t.Fields() {
			v, err := Evaluate(f.Value, doc)
			if err != nil {
				return nil, err
			}
			out.Set(f.Key, v)
		}
		return out, nil
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			v, err := Evaluate(e, doc)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	default:
		return bson.Normalize(expr), nil
	}
}

// MustEvaluate is Evaluate but panics on error; for statically known
// expressions.
func MustEvaluate(expr any, doc *bson.Doc) any {
	v, err := Evaluate(expr, doc)
	if err != nil {
		panic(err)
	}
	return v
}

// singleOperator reports whether the document is an operator expression
// ({"$cond": ...}) and returns its operator and argument.
func singleOperator(d *bson.Doc) (string, any, bool) {
	if d.Len() != 1 {
		return "", nil, false
	}
	f := d.Fields()[0]
	if !strings.HasPrefix(f.Key, "$") {
		return "", nil, false
	}
	return f.Key, f.Value, true
}

func evalOperator(op string, arg any, doc *bson.Doc) (any, error) {
	switch op {
	case "$literal":
		return bson.Normalize(arg), nil
	case "$add", "$multiply":
		return evalArithmeticN(op, arg, doc)
	case "$subtract", "$divide", "$mod", "$pow":
		return evalArithmetic2(op, arg, doc)
	case "$abs", "$floor", "$ceil", "$trunc", "$sqrt":
		return evalArithmetic1(op, arg, doc)
	case "$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$cmp":
		return evalComparison(op, arg, doc)
	case "$and", "$or":
		return evalLogicalN(op, arg, doc)
	case "$not":
		args, err := evalArgs(arg, doc)
		if err != nil {
			return nil, err
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("aggregate: $not takes exactly one argument")
		}
		return !bson.Truthy(args[0]), nil
	case "$cond":
		return evalCond(arg, doc)
	case "$ifNull":
		args, err := evalArgs(arg, doc)
		if err != nil {
			return nil, err
		}
		if len(args) != 2 {
			return nil, fmt.Errorf("aggregate: $ifNull takes exactly two arguments")
		}
		if args[0] == nil {
			return args[1], nil
		}
		return args[0], nil
	case "$concat":
		args, err := evalArgs(arg, doc)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, a := range args {
			if a == nil {
				return nil, nil
			}
			s, ok := a.(string)
			if !ok {
				return nil, fmt.Errorf("aggregate: $concat argument %v is not a string", a)
			}
			b.WriteString(s)
		}
		return b.String(), nil
	case "$toLower", "$toUpper":
		v, err := Evaluate(arg, doc)
		if err != nil {
			return nil, err
		}
		s, _ := v.(string)
		if op == "$toLower" {
			return strings.ToLower(s), nil
		}
		return strings.ToUpper(s), nil
	case "$size":
		v, err := Evaluate(arg, doc)
		if err != nil {
			return nil, err
		}
		arr, ok := v.([]any)
		if !ok {
			return nil, fmt.Errorf("aggregate: $size requires an array, got %T", v)
		}
		return int64(len(arr)), nil
	case "$in":
		args, err := evalArgs(arg, doc)
		if err != nil {
			return nil, err
		}
		if len(args) != 2 {
			return nil, fmt.Errorf("aggregate: $in takes exactly two arguments")
		}
		arr, ok := args[1].([]any)
		if !ok {
			return nil, fmt.Errorf("aggregate: $in second argument must be an array")
		}
		for _, e := range arr {
			if bson.Compare(e, args[0]) == 0 {
				return true, nil
			}
		}
		return false, nil
	default:
		return nil, fmt.Errorf("aggregate: unknown expression operator %s", op)
	}
}

// evalArgs evaluates an operator argument that is either a single expression
// or an array of expressions.
func evalArgs(arg any, doc *bson.Doc) ([]any, error) {
	if arr, ok := arg.([]any); ok {
		out := make([]any, len(arr))
		for i, e := range arr {
			v, err := Evaluate(e, doc)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	v, err := Evaluate(arg, doc)
	if err != nil {
		return nil, err
	}
	return []any{v}, nil
}

func evalArithmeticN(op string, arg any, doc *bson.Doc) (any, error) {
	args, err := evalArgs(arg, doc)
	if err != nil {
		return nil, err
	}
	allInt := true
	var acc float64
	if op == "$multiply" {
		acc = 1
	}
	for _, a := range args {
		if a == nil {
			return nil, nil
		}
		f, ok := bson.AsFloat(a)
		if !ok {
			return nil, fmt.Errorf("aggregate: %s argument %v is not numeric", op, a)
		}
		if _, isInt := a.(int64); !isInt {
			allInt = false
		}
		if op == "$add" {
			acc += f
		} else {
			acc *= f
		}
	}
	if allInt {
		return int64(acc), nil
	}
	return acc, nil
}

func evalArithmetic2(op string, arg any, doc *bson.Doc) (any, error) {
	args, err := evalArgs(arg, doc)
	if err != nil {
		return nil, err
	}
	if len(args) != 2 {
		return nil, fmt.Errorf("aggregate: %s takes exactly two arguments", op)
	}
	if args[0] == nil || args[1] == nil {
		return nil, nil
	}
	a, aok := bson.AsFloat(args[0])
	b, bok := bson.AsFloat(args[1])
	if !aok || !bok {
		return nil, fmt.Errorf("aggregate: %s arguments must be numeric, got %v and %v", op, args[0], args[1])
	}
	_, aInt := args[0].(int64)
	_, bInt := args[1].(int64)
	bothInt := aInt && bInt
	switch op {
	case "$subtract":
		if bothInt {
			return int64(a) - int64(b), nil
		}
		return a - b, nil
	case "$divide":
		if b == 0 {
			return nil, fmt.Errorf("aggregate: $divide by zero")
		}
		return a / b, nil
	case "$mod":
		if b == 0 {
			return nil, fmt.Errorf("aggregate: $mod by zero")
		}
		if bothInt {
			return int64(a) % int64(b), nil
		}
		return math.Mod(a, b), nil
	case "$pow":
		return math.Pow(a, b), nil
	}
	return nil, fmt.Errorf("aggregate: unreachable operator %s", op)
}

func evalArithmetic1(op string, arg any, doc *bson.Doc) (any, error) {
	args, err := evalArgs(arg, doc)
	if err != nil {
		return nil, err
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("aggregate: %s takes exactly one argument", op)
	}
	if args[0] == nil {
		return nil, nil
	}
	f, ok := bson.AsFloat(args[0])
	if !ok {
		return nil, fmt.Errorf("aggregate: %s argument %v is not numeric", op, args[0])
	}
	_, isInt := args[0].(int64)
	switch op {
	case "$abs":
		if isInt {
			return int64(math.Abs(f)), nil
		}
		return math.Abs(f), nil
	case "$floor":
		return int64(math.Floor(f)), nil
	case "$ceil":
		return int64(math.Ceil(f)), nil
	case "$trunc":
		return int64(math.Trunc(f)), nil
	case "$sqrt":
		if f < 0 {
			return nil, fmt.Errorf("aggregate: $sqrt of negative value")
		}
		return math.Sqrt(f), nil
	}
	return nil, fmt.Errorf("aggregate: unreachable operator %s", op)
}

func evalComparison(op string, arg any, doc *bson.Doc) (any, error) {
	args, err := evalArgs(arg, doc)
	if err != nil {
		return nil, err
	}
	if len(args) != 2 {
		return nil, fmt.Errorf("aggregate: %s takes exactly two arguments", op)
	}
	cmp := bson.Compare(args[0], args[1])
	switch op {
	case "$cmp":
		return int64(cmp), nil
	case "$eq":
		return cmp == 0, nil
	case "$ne":
		return cmp != 0, nil
	case "$gt":
		return cmp > 0, nil
	case "$gte":
		return cmp >= 0, nil
	case "$lt":
		return cmp < 0, nil
	case "$lte":
		return cmp <= 0, nil
	}
	return nil, fmt.Errorf("aggregate: unreachable operator %s", op)
}

func evalLogicalN(op string, arg any, doc *bson.Doc) (any, error) {
	args, err := evalArgs(arg, doc)
	if err != nil {
		return nil, err
	}
	if op == "$and" {
		for _, a := range args {
			if !bson.Truthy(a) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, a := range args {
		if bson.Truthy(a) {
			return true, nil
		}
	}
	return false, nil
}

// evalCond supports both the array form [if, then, else] and the document
// form {if: ..., then: ..., else: ...}.
func evalCond(arg any, doc *bson.Doc) (any, error) {
	switch t := arg.(type) {
	case []any:
		if len(t) != 3 {
			return nil, fmt.Errorf("aggregate: $cond array form takes [if, then, else]")
		}
		condVal, err := Evaluate(t[0], doc)
		if err != nil {
			return nil, err
		}
		if bson.Truthy(condVal) {
			return Evaluate(t[1], doc)
		}
		return Evaluate(t[2], doc)
	case *bson.Doc:
		ifExpr, ok1 := t.Get("if")
		thenExpr, ok2 := t.Get("then")
		elseExpr, ok3 := t.Get("else")
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("aggregate: $cond document form requires if/then/else")
		}
		condVal, err := Evaluate(ifExpr, doc)
		if err != nil {
			return nil, err
		}
		if bson.Truthy(condVal) {
			return Evaluate(thenExpr, doc)
		}
		return Evaluate(elseExpr, doc)
	default:
		return nil, fmt.Errorf("aggregate: $cond requires an array or document argument")
	}
}
