// Package trace provides the request-scoped span trees behind the server's
// currentOp and getTraces operations. A Tracer hands out root spans at the
// wire layer; every layer below (mongos fan-out, mongod execution, storage
// apply, WAL commit wait, replset quorum wait) attaches child spans and
// attributes as the request passes through, carried by the options structs
// the layers already share — no call signature changes anywhere.
//
// The design goal is that tracing costs nothing when it is off and almost
// nothing when a request is not sampled:
//
//   - A nil *Tracer returns nil root spans, and every *Span method is a
//     no-op on a nil receiver, so instrumented code never branches on
//     "is tracing on" — it just calls methods.
//   - Sampling is decided at root-span creation with one atomic splitmix64
//     step (no locks, no time source).
//   - Retention is decided when the root finishes: a trace is kept when it
//     was sampled at start OR its total duration cleared the tracer's slow
//     threshold — so slow outliers are always captured even at tiny sample
//     rates ("tail retention").
//
// Completed traces live in a bounded ring (oldest evicted first); in-flight
// roots are tracked in a registry keyed by span ID so currentOp can list
// them. Both are snapshotted into immutable Views for rendering.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize bounds the completed-trace ring when Options.RingSize is
// zero.
const DefaultRingSize = 256

// Options configures a Tracer.
type Options struct {
	// SampleRate is the fraction of root spans retained regardless of
	// duration, in [0, 1]. Zero keeps only slow ops; 1 keeps everything.
	SampleRate float64
	// SlowThreshold force-retains any trace whose root duration reaches it.
	// Zero disables slow-op force sampling.
	SlowThreshold time.Duration
	// RingSize bounds the completed-trace ring (DefaultRingSize when zero).
	RingSize int
	// Clock replaces the wall clock; tests inject one so span durations are
	// deterministic without sleeping.
	Clock func() time.Time
	// Seed seeds the sampling sequence; zero picks a fixed default so tests
	// are reproducible by default.
	Seed uint64
}

// Stats is a point-in-time summary of tracer activity, exported as gauges
// on the /metrics endpoint.
type Stats struct {
	Started  int64 // root spans created
	Sampled  int64 // roots chosen by probabilistic sampling
	Slow     int64 // roots retained only because they were slow
	Retained int64 // traces placed in the completed ring
	Dropped  int64 // finished roots discarded (not sampled, not slow)
	InFlight int   // roots started but not yet finished
}

// Tracer creates and retains span trees.
type Tracer struct {
	sampleRate float64
	threshold  uint64 // sampling cut on the splitmix64 output
	slow       time.Duration
	clock      func() time.Time
	rnd        atomic.Uint64

	started  atomic.Int64
	sampled  atomic.Int64
	slowKept atomic.Int64
	retained atomic.Int64
	dropped  atomic.Int64

	mu       sync.Mutex
	inflight map[uint64]*Span
	ring     []*Span // completed roots, ring[head] is the oldest once full
	head     int

	exporter atomic.Pointer[Exporter]
}

// New creates a Tracer. A nil Tracer is itself valid — StartSpan on it
// returns nil and tracing is free — so callers keep a *Tracer field and
// leave it nil to disable tracing.
func New(opts Options) *Tracer {
	if opts.SampleRate < 0 {
		opts.SampleRate = 0
	}
	if opts.SampleRate > 1 {
		opts.SampleRate = 1
	}
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	t := &Tracer{
		sampleRate: opts.SampleRate,
		slow:       opts.SlowThreshold,
		clock:      opts.Clock,
		inflight:   make(map[uint64]*Span),
		ring:       make([]*Span, 0, size),
	}
	// A rate of exactly 1 must always sample; comparing against MaxUint64
	// with < would lose the top value, so the threshold is inclusive and a
	// full-rate tracer short-circuits in sample().
	t.threshold = uint64(opts.SampleRate * float64(^uint64(0)))
	seed := opts.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	t.rnd.Store(seed)
	return t
}

func (t *Tracer) now() time.Time {
	if t.clock != nil {
		return t.clock()
	}
	return time.Now()
}

// splitmix64 is the finalizer of the SplitMix64 generator: one atomic add
// of the golden-ratio increment, then two xor-shift-multiply rounds. Good
// enough for sampling, and lock-free.
func (t *Tracer) next() uint64 {
	z := t.rnd.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (t *Tracer) sample() bool {
	if t.sampleRate >= 1 {
		return true
	}
	if t.sampleRate <= 0 {
		return false
	}
	return t.next() <= t.threshold
}

// StartSpan begins a new root span. Every root is created and registered
// for currentOp while in flight — sampling only decides whether the
// finished tree is retained in the ring. Returns nil on a nil Tracer.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	s := &Span{
		tracer:  t,
		traceID: t.next(),
		spanID:  t.next(),
		name:    name,
		start:   t.now(),
		sampled: t.sample(),
	}
	if s.sampled {
		t.sampled.Add(1)
	}
	t.mu.Lock()
	t.inflight[s.spanID] = s
	t.mu.Unlock()
	return s
}

// finishRoot decides retention for a completed root and maintains the ring.
// Retained traces also flow to the exporter, when one is attached: the
// finished tree is snapshotted into a View here (span mutation has ended,
// so the snapshot is stable) and offered to the export queue without
// blocking.
func (t *Tracer) finishRoot(s *Span, dur time.Duration) {
	keep := s.sampled
	if !keep && t.slow > 0 && dur >= t.slow {
		keep = true
		t.slowKept.Add(1)
	}
	t.mu.Lock()
	delete(t.inflight, s.spanID)
	if keep {
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, s)
		} else {
			t.ring[t.head] = s
			t.head = (t.head + 1) % cap(t.ring)
		}
	}
	t.mu.Unlock()
	if keep {
		t.retained.Add(1)
		if e := t.exporter.Load(); e != nil {
			e.enqueue(s.view(time.Time{}))
		}
	} else {
		t.dropped.Add(1)
	}
}

// SetExporter attaches (or, with nil, detaches) a span exporter. Every
// trace retained after the call — sampled or slow — is enqueued for export.
// The tracer does not own the exporter: callers Close it on shutdown.
func (t *Tracer) SetExporter(e *Exporter) {
	if t == nil {
		return
	}
	t.exporter.Store(e)
}

// Exporter returns the attached exporter, or nil.
func (t *Tracer) Exporter() *Exporter {
	if t == nil {
		return nil
	}
	return t.exporter.Load()
}

// Stats returns a snapshot of tracer counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	inflight := len(t.inflight)
	t.mu.Unlock()
	return Stats{
		Started:  t.started.Load(),
		Sampled:  t.sampled.Load(),
		Slow:     t.slowKept.Load(),
		Retained: t.retained.Load(),
		Dropped:  t.dropped.Load(),
		InFlight: inflight,
	}
}

// CurrentOps snapshots the in-flight root spans, oldest first. The views
// carry InFlight=true and a duration measured up to now.
func (t *Tracer) CurrentOps() []View {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	roots := make([]*Span, 0, len(t.inflight))
	for _, s := range t.inflight {
		roots = append(roots, s)
	}
	t.mu.Unlock()
	views := make([]View, 0, len(roots))
	for _, s := range roots {
		views = append(views, s.view(now))
	}
	sortViewsByStart(views)
	return views
}

// Traces returns up to limit completed traces, most recent first (all of
// them when limit <= 0).
func (t *Tracer) Traces(limit int) []View {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ordered := make([]*Span, 0, len(t.ring))
	// ring[head:] then ring[:head] is oldest→newest once the ring wrapped;
	// before that head is 0 and the slice is already ordered.
	ordered = append(ordered, t.ring[t.head:]...)
	ordered = append(ordered, t.ring[:t.head]...)
	t.mu.Unlock()
	// Reverse to most-recent-first.
	for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
		ordered[i], ordered[j] = ordered[j], ordered[i]
	}
	if limit > 0 && len(ordered) > limit {
		ordered = ordered[:limit]
	}
	views := make([]View, 0, len(ordered))
	for _, s := range ordered {
		views = append(views, s.view(time.Time{}))
	}
	return views
}

// Span is one timed node of a trace tree. All methods are safe on a nil
// receiver (no-ops), and safe for concurrent use — mongos fans a batch out
// to shards in parallel goroutines that attach children to the same parent.
type Span struct {
	tracer  *Tracer
	traceID uint64
	spanID  uint64
	name    string
	start   time.Time
	sampled bool // root-only: probabilistically chosen at start
	root    *Span

	mu       sync.Mutex
	dur      time.Duration
	finished bool
	attrs    []Attr
	children []*Span
}

// Attr is one span attribute. Values are kept as-is; rendering stringifies.
type Attr struct {
	Key   string
	Value any
}

// Child starts a child span. On a nil receiver it returns nil, so deep
// layers chain s.Child(...).Child(...) without nil checks.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	root := s.root
	if root == nil {
		root = s
	}
	c := &Span{
		tracer:  s.tracer,
		traceID: s.traceID,
		spanID:  s.tracer.next(),
		name:    name,
		start:   s.tracer.now(),
		root:    root,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Finish stamps the span's duration. Finishing a root decides retention and
// moves the trace from the in-flight registry to the completed ring. Double
// finish is a no-op.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.dur = now.Sub(s.start)
	dur := s.dur
	s.mu.Unlock()
	if s.root == nil {
		s.tracer.finishRoot(s, dur)
	}
}

// TraceID returns the span's trace identifier as a 16-hex-digit string.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x", s.traceID)
}

// SampledTraceID returns the trace ID only when the trace is guaranteed to
// be retained — the root was probabilistically sampled at start — and ""
// otherwise. Exemplar producers use it so every trace ID attached to a
// histogram bucket resolves to a trace queryable via getTraces (slow-only
// retention is decided after the fact, too late for an exemplar already
// emitted).
func (s *Span) SampledTraceID() string {
	if s == nil {
		return ""
	}
	root := s.root
	if root == nil {
		root = s
	}
	if !root.sampled {
		return ""
	}
	return fmt.Sprintf("%016x", s.traceID)
}

// View is an immutable rendering of a span subtree.
type View struct {
	TraceID  string
	SpanID   string
	Name     string
	Start    time.Time
	Duration time.Duration
	InFlight bool
	Sampled  bool
	Attrs    []Attr
	Children []View
}

// view snapshots the subtree. For in-flight spans (not finished) the
// duration is measured up to now when now is non-zero.
func (s *Span) view(now time.Time) View {
	s.mu.Lock()
	v := View{
		TraceID: fmt.Sprintf("%016x", s.traceID),
		SpanID:  fmt.Sprintf("%016x", s.spanID),
		Name:    s.name,
		Start:   s.start,
		Sampled: s.sampled,
	}
	if s.finished {
		v.Duration = s.dur
	} else {
		v.InFlight = true
		if !now.IsZero() {
			v.Duration = now.Sub(s.start)
		}
	}
	v.Attrs = append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		v.Children = append(v.Children, c.view(now))
	}
	return v
}

// Find returns the first view in the tree (depth-first, self included)
// whose name matches, or nil. A test helper for asserting tree shape.
func (v *View) Find(name string) *View {
	if v.Name == name {
		return v
	}
	for i := range v.Children {
		if f := v.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Attr returns the value of the named attribute and whether it was set.
func (v *View) Attr(key string) (any, bool) {
	for _, a := range v.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

func sortViewsByStart(views []View) {
	// Insertion sort: currentOp listings are small (in-flight ops only).
	for i := 1; i < len(views); i++ {
		for j := i; j > 0 && views[j].Start.Before(views[j-1].Start); j-- {
			views[j], views[j-1] = views[j-1], views[j]
		}
	}
}
