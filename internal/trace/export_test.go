package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// exportOne runs a sampled root with one child through tr and flushes the
// exporter so the sink has received it.
func exportOne(t *testing.T, tr *Tracer, clk *fakeClock, e *Exporter) *Span {
	t.Helper()
	root := tr.StartSpan("wire.insert")
	root.SetAttr("collection", "orders")
	child := root.Child("mongod.bulkWrite")
	child.SetAttr("docs", 3)
	clk.Advance(2 * time.Millisecond)
	child.Finish()
	clk.Advance(time.Millisecond)
	root.Finish()
	e.Flush()
	return root
}

func TestExporterOTLPShape(t *testing.T) {
	clk := newClock(time.Hour)
	tr := New(Options{SampleRate: 1, Clock: clk.Now})
	sink := &MemorySink{}
	e := NewExporter(sink, "docstored-test", 16)
	tr.SetExporter(e)

	root := exportOne(t, tr, clk, e)

	exports := sink.Exports()
	if len(exports) != 1 {
		t.Fatalf("exported %d payloads, want 1", len(exports))
	}
	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				Spans []struct {
					TraceID           string `json:"traceId"`
					SpanID            string `json:"spanId"`
					ParentSpanID      string `json:"parentSpanId"`
					Name              string `json:"name"`
					Kind              int    `json:"kind"`
					StartTimeUnixNano string `json:"startTimeUnixNano"`
					EndTimeUnixNano   string `json:"endTimeUnixNano"`
					Attributes        []struct {
						Key   string `json:"key"`
						Value struct {
							StringValue string `json:"stringValue"`
							IntValue    string `json:"intValue"`
						} `json:"value"`
					} `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(exports[0], &doc); err != nil {
		t.Fatalf("payload is not valid JSON: %v\n%s", err, exports[0])
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("want 1 resourceSpans / 1 scopeSpans, got %s", exports[0])
	}
	res := doc.ResourceSpans[0]
	if len(res.Resource.Attributes) == 0 ||
		res.Resource.Attributes[0].Key != "service.name" ||
		res.Resource.Attributes[0].Value.StringValue != "docstored-test" {
		t.Fatalf("resource attributes missing service.name: %s", exports[0])
	}
	spans := res.ScopeSpans[0].Spans
	if len(spans) != 2 {
		t.Fatalf("flattened %d spans, want 2 (root + child)", len(spans))
	}
	rootSpan, childSpan := spans[0], spans[1]
	if rootSpan.Name != "wire.insert" || childSpan.Name != "mongod.bulkWrite" {
		t.Fatalf("span names = %q, %q", rootSpan.Name, childSpan.Name)
	}
	wantTrace := pad32(root.TraceID())
	if len(wantTrace) != 32 {
		t.Fatalf("padded trace id %q is not 32 hex digits", wantTrace)
	}
	if rootSpan.TraceID != wantTrace || childSpan.TraceID != wantTrace {
		t.Fatalf("trace ids %q/%q, want %q", rootSpan.TraceID, childSpan.TraceID, wantTrace)
	}
	if rootSpan.ParentSpanID != "" {
		t.Fatalf("root has parentSpanId %q, want none", rootSpan.ParentSpanID)
	}
	if childSpan.ParentSpanID != rootSpan.SpanID {
		t.Fatalf("child parentSpanId %q, want root spanId %q", childSpan.ParentSpanID, rootSpan.SpanID)
	}
	if rootSpan.Kind != otlpSpanKindInternal {
		t.Fatalf("span kind %d, want %d", rootSpan.Kind, otlpSpanKindInternal)
	}
	// Root spans 3ms; timestamps are decimal-string nanos per OTLP JSON.
	if rootSpan.StartTimeUnixNano == "" || rootSpan.EndTimeUnixNano == "" {
		t.Fatalf("missing timestamps: %+v", rootSpan)
	}
	var attrs = map[string]string{}
	for _, a := range rootSpan.Attributes {
		attrs[a.Key] = a.Value.StringValue
	}
	if attrs["collection"] != "orders" {
		t.Fatalf("root attributes = %v, want collection=orders", attrs)
	}
	gotInt := ""
	for _, a := range childSpan.Attributes {
		if a.Key == "docs" {
			gotInt = a.Value.IntValue
		}
	}
	if gotInt != "3" {
		t.Fatalf("child docs attribute = %q, want intValue \"3\"", gotInt)
	}
	if st := e.Stats(); st.Exported != 1 || st.Dropped != 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 1 exported", st)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestExporterOnlyRetainedTraces(t *testing.T) {
	clk := newClock(0)
	tr := New(Options{SampleRate: 0, Clock: clk.Now})
	sink := &MemorySink{}
	e := NewExporter(sink, "t", 16)
	tr.SetExporter(e)

	s := tr.StartSpan("wire.find")
	clk.Advance(time.Millisecond)
	s.Finish()
	e.Flush()
	if got := len(sink.Exports()); got != 0 {
		t.Fatalf("unsampled trace exported %d payloads, want 0", got)
	}
	e.Close()
}

func TestExporterQueueOverflowDrops(t *testing.T) {
	clk := newClock(0)
	tr := New(Options{SampleRate: 1, Clock: clk.Now})
	// A sink that blocks until released, so the queue backs up.
	gate := make(chan struct{})
	sink := &gateSink{gate: gate}
	e := NewExporter(sink, "t", 2)
	tr.SetExporter(e)

	// One trace occupies the drainer, two fill the queue; the rest drop.
	for i := 0; i < 8; i++ {
		s := tr.StartSpan("op")
		s.Finish()
	}
	// enqueue is synchronous, so drops are already counted.
	if st := e.Stats(); st.Dropped == 0 {
		t.Fatalf("stats = %+v, want drops with a full queue", st)
	}
	close(gate)
	e.Flush()
	st := e.Stats()
	if st.Exported+st.Dropped != 8 || st.Exported < 1 {
		t.Fatalf("stats = %+v, want exported+dropped == 8", st)
	}
	e.Close()
}

// gateSink blocks every Export until the gate closes.
type gateSink struct {
	gate  chan struct{}
	count atomic.Int64
}

func (g *gateSink) Export([]byte) error { <-g.gate; g.count.Add(1); return nil }
func (g *gateSink) Close() error        { return nil }

func TestExporterEnqueueAfterCloseDrops(t *testing.T) {
	clk := newClock(0)
	tr := New(Options{SampleRate: 1, Clock: clk.Now})
	sink := &MemorySink{}
	e := NewExporter(sink, "t", 4)
	tr.SetExporter(e)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s := tr.StartSpan("op")
	s.Finish()
	if st := e.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 drop after close", st)
	}
	// Double close is a no-op.
	if err := e.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestNilExporterAndNilTracerAreFree(t *testing.T) {
	var e *Exporter
	e.enqueue(View{})
	e.Flush()
	if err := e.Close(); err != nil {
		t.Fatalf("nil close: %v", err)
	}
	if st := e.Stats(); st != (ExporterStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	var tr *Tracer
	tr.SetExporter(nil)
	if tr.Exporter() != nil {
		t.Fatal("nil tracer returned an exporter")
	}
	var s *Span
	if s.SampledTraceID() != "" {
		t.Fatal("nil span returned a sampled trace id")
	}
}

func TestSampledTraceID(t *testing.T) {
	clk := newClock(0)
	always := New(Options{SampleRate: 1, Clock: clk.Now})
	never := New(Options{SampleRate: 0, Clock: clk.Now})

	s := always.StartSpan("op")
	if got := s.SampledTraceID(); got != s.TraceID() {
		t.Fatalf("sampled root SampledTraceID = %q, want %q", got, s.TraceID())
	}
	c := s.Child("inner")
	if got := c.SampledTraceID(); got != s.TraceID() {
		t.Fatalf("child of sampled root SampledTraceID = %q, want %q", got, s.TraceID())
	}
	u := never.StartSpan("op")
	if got := u.SampledTraceID(); got != "" {
		t.Fatalf("unsampled root SampledTraceID = %q, want empty", got)
	}
	if got := u.Child("inner").SampledTraceID(); got != "" {
		t.Fatalf("child of unsampled root SampledTraceID = %q, want empty", got)
	}
}

func TestFileSinkNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.ndjson")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	clk := newClock(0)
	tr := New(Options{SampleRate: 1, Clock: clk.Now})
	e := NewExporter(sink, "t", 16)
	tr.SetExporter(e)

	for i := 0; i < 3; i++ {
		s := tr.StartSpan("op")
		clk.Advance(time.Millisecond)
		s.Finish()
	}
	e.Flush()
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("file has %d lines, want 3:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if _, ok := doc["resourceSpans"]; !ok {
			t.Fatalf("line %d missing resourceSpans: %s", i, line)
		}
	}
}

func TestHTTPSinkRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var slept []time.Duration
	sink := NewHTTPSink(srv.URL, HTTPSinkOptions{
		Client:  srv.Client(),
		Retries: 3,
		Backoff: 10 * time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	})
	if err := sink.Export([]byte(`{"resourceSpans":[]}`)); err != nil {
		t.Fatalf("export: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	// Exponential: 10ms then 20ms before attempts 2 and 3.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", slept, want)
	}
}

func TestHTTPSinkPermanentFailureNoRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()
	sink := NewHTTPSink(srv.URL, HTTPSinkOptions{
		Client: srv.Client(),
		Sleep:  func(time.Duration) { t.Fatal("slept on a permanent failure") },
	})
	err := sink.Export([]byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v, want rejection", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 4xx)", calls.Load())
	}
}

func TestHTTPSinkExhaustsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	sink := NewHTTPSink(srv.URL, HTTPSinkOptions{
		Client:  srv.Client(),
		Retries: 2,
		Sleep:   func(time.Duration) {},
	})
	err := sink.Export([]byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("err = %v, want 500 after exhausted retries", err)
	}
}

func TestExporterCountsSinkFailures(t *testing.T) {
	clk := newClock(0)
	tr := New(Options{SampleRate: 1, Clock: clk.Now})
	e := NewExporter(failSink{}, "t", 16)
	tr.SetExporter(e)
	s := tr.StartSpan("op")
	s.Finish()
	e.Flush()
	if st := e.Stats(); st.Failed != 1 || st.Exported != 0 {
		t.Fatalf("stats = %+v, want 1 failed", st)
	}
	e.Close()
}

type failSink struct{}

func (failSink) Export([]byte) error { return errors.New("boom") }
func (failSink) Close() error        { return nil }

// TestExportStress hammers a tracer+exporter from many goroutines while the
// stats and flush paths run concurrently; run under -race in CI.
func TestExportStress(t *testing.T) {
	clk := newClock(0)
	tr := New(Options{SampleRate: 0.5, Clock: clk.Now, Seed: 99})
	sink := &MemorySink{}
	e := NewExporter(sink, "t", 32)
	tr.SetExporter(e)

	const workers = 8
	const perWorker = 200
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perWorker; i++ {
				s := tr.StartSpan(fmt.Sprintf("op-%d", w))
				c := s.Child("inner")
				c.SetAttr("i", i)
				c.Finish()
				s.Finish()
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				e.Stats()
				e.Flush()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		<-done
	}
	close(stop)
	e.Flush()
	st := e.Stats()
	if got := int64(len(sink.Exports())); got != st.Exported {
		t.Fatalf("sink holds %d payloads, stats say %d exported", got, st.Exported)
	}
	if st.Exported+st.Dropped == 0 {
		t.Fatal("no traces reached the exporter")
	}
	e.Close()
}
