package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is the injectable-clock pattern used across the repo's tests:
// time advances only when the test says so, so duration assertions never
// sleep.
type fakeClock struct {
	ns atomic.Int64
}

func (c *fakeClock) Now() time.Time           { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration)  { c.ns.Add(int64(d)) }
func newClock(start time.Duration) *fakeClock { c := &fakeClock{}; c.ns.Store(int64(start)); return c }

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("wire.insert")
	if s != nil {
		t.Fatalf("nil tracer produced span %v", s)
	}
	// Every method must be callable on the nil span chain.
	c := s.Child("mongod.bulkWrite").Child("storage.bulkWrite")
	c.SetAttr("k", 1)
	c.Finish()
	s.Finish()
	if got := s.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if ops := tr.CurrentOps(); ops != nil {
		t.Fatalf("nil tracer CurrentOps = %v", ops)
	}
	if traces := tr.Traces(0); traces != nil {
		t.Fatalf("nil tracer Traces = %v", traces)
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer Stats = %+v", st)
	}
}

func TestSpanTreeShapeAndDurations(t *testing.T) {
	clk := newClock(time.Hour)
	tr := New(Options{SampleRate: 1, Clock: clk.Now})

	root := tr.StartSpan("wire.bulkWrite")
	root.SetAttr("db", "testdb")
	clk.Advance(time.Millisecond)
	shard := root.Child("mongos.shard")
	shard.SetAttr("shard", "s0")
	clk.Advance(2 * time.Millisecond)
	storage := shard.Child("storage.bulkWrite")
	clk.Advance(3 * time.Millisecond)
	storage.Finish()
	shard.Finish()
	clk.Advance(time.Millisecond)
	root.Finish()

	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	v := traces[0]
	if v.Name != "wire.bulkWrite" || v.Duration != 7*time.Millisecond {
		t.Fatalf("root = %q/%v, want wire.bulkWrite/7ms", v.Name, v.Duration)
	}
	if db, ok := v.Attr("db"); !ok || db != "testdb" {
		t.Fatalf("root db attr = %v, %v", db, ok)
	}
	sh := v.Find("mongos.shard")
	if sh == nil || sh.Duration != 5*time.Millisecond {
		t.Fatalf("shard span = %+v, want 5ms", sh)
	}
	st := v.Find("storage.bulkWrite")
	if st == nil || st.Duration != 3*time.Millisecond {
		t.Fatalf("storage span = %+v, want 3ms", st)
	}
	if sh.TraceID != v.TraceID || st.TraceID != v.TraceID {
		t.Fatalf("trace IDs diverge: %s %s %s", v.TraceID, sh.TraceID, st.TraceID)
	}
	if sh.SpanID == v.SpanID || st.SpanID == sh.SpanID {
		t.Fatalf("span IDs collide")
	}
}

func TestSlowOpForceSampling(t *testing.T) {
	clk := newClock(time.Hour)
	tr := New(Options{SampleRate: 0, SlowThreshold: 10 * time.Millisecond, Clock: clk.Now})

	fast := tr.StartSpan("wire.find")
	clk.Advance(9 * time.Millisecond)
	fast.Finish()
	slow := tr.StartSpan("wire.update")
	clk.Advance(10 * time.Millisecond)
	slow.Finish()

	traces := tr.Traces(0)
	if len(traces) != 1 || traces[0].Name != "wire.update" {
		t.Fatalf("traces = %+v, want only the slow wire.update", traces)
	}
	st := tr.Stats()
	if st.Started != 2 || st.Slow != 1 || st.Retained != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSampleRateZeroAndOne(t *testing.T) {
	clk := newClock(0)
	always := New(Options{SampleRate: 1, Clock: clk.Now})
	never := New(Options{SampleRate: 0, Clock: clk.Now})
	for i := 0; i < 100; i++ {
		always.StartSpan("op").Finish()
		never.StartSpan("op").Finish()
	}
	if got := always.Stats().Retained; got != 100 {
		t.Fatalf("rate-1 retained %d/100", got)
	}
	if got := never.Stats().Retained; got != 0 {
		t.Fatalf("rate-0 retained %d/100", got)
	}
}

func TestSampleRateIsApproximatelyHonoured(t *testing.T) {
	clk := newClock(0)
	tr := New(Options{SampleRate: 0.25, RingSize: 8192, Clock: clk.Now, Seed: 12345})
	const n = 8000
	for i := 0; i < n; i++ {
		tr.StartSpan("op").Finish()
	}
	got := tr.Stats().Sampled
	// 3-sigma band around 2000 for a binomial(8000, 0.25).
	if got < 1800 || got > 2200 {
		t.Fatalf("sampled %d of %d at rate 0.25", got, n)
	}
}

func TestRingBoundsAndEvictionOrder(t *testing.T) {
	clk := newClock(0)
	tr := New(Options{SampleRate: 1, RingSize: 4, Clock: clk.Now})
	for i := 0; i < 10; i++ {
		s := tr.StartSpan(fmt.Sprintf("op-%d", i))
		clk.Advance(time.Millisecond)
		s.Finish()
	}
	traces := tr.Traces(0)
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	// Most recent first: op-9, op-8, op-7, op-6.
	for i, want := range []string{"op-9", "op-8", "op-7", "op-6"} {
		if traces[i].Name != want {
			t.Fatalf("traces[%d] = %q, want %q (all: %v)", i, traces[i].Name, want, traces)
		}
	}
	if limited := tr.Traces(2); len(limited) != 2 || limited[0].Name != "op-9" {
		t.Fatalf("Traces(2) = %+v", limited)
	}
}

func TestCurrentOpsListsInFlightRoots(t *testing.T) {
	clk := newClock(time.Hour)
	tr := New(Options{SampleRate: 1, Clock: clk.Now})

	a := tr.StartSpan("wire.find")
	clk.Advance(time.Millisecond)
	b := tr.StartSpan("wire.insert")
	clk.Advance(4 * time.Millisecond)

	ops := tr.CurrentOps()
	if len(ops) != 2 {
		t.Fatalf("currentOps = %d, want 2", len(ops))
	}
	// Oldest first.
	if ops[0].Name != "wire.find" || ops[1].Name != "wire.insert" {
		t.Fatalf("order = %q, %q", ops[0].Name, ops[1].Name)
	}
	if !ops[0].InFlight || ops[0].Duration != 5*time.Millisecond {
		t.Fatalf("in-flight view = %+v, want 5ms elapsed", ops[0])
	}
	if ops[1].Duration != 4*time.Millisecond {
		t.Fatalf("second op elapsed = %v, want 4ms", ops[1].Duration)
	}

	a.Finish()
	b.Finish()
	if left := tr.CurrentOps(); len(left) != 0 {
		t.Fatalf("currentOps after finish = %+v", left)
	}
	if st := tr.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after all finished", st.InFlight)
	}
}

func TestDoubleFinishIsIdempotent(t *testing.T) {
	clk := newClock(0)
	tr := New(Options{SampleRate: 1, Clock: clk.Now})
	s := tr.StartSpan("op")
	clk.Advance(time.Millisecond)
	s.Finish()
	clk.Advance(time.Hour)
	s.Finish()
	traces := tr.Traces(0)
	if len(traces) != 1 || traces[0].Duration != time.Millisecond {
		t.Fatalf("traces = %+v, want one 1ms trace", traces)
	}
}

// TestSpanRingConcurrentStress hammers one tracer from many goroutines —
// starting/finishing roots, attaching children concurrently to shared
// parents (the mongos fan-out shape), and reading CurrentOps/Traces/Stats
// throughout — to give the race detector surface. No sleeps: the fake
// clock advances atomically from the writer goroutines.
func TestSpanRingConcurrentStress(t *testing.T) {
	clk := newClock(time.Hour)
	tr := New(Options{SampleRate: 0.5, SlowThreshold: 40 * time.Microsecond, RingSize: 64, Clock: clk.Now})

	const (
		writers = 8
		iters   = 300
		fanout  = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				root := tr.StartSpan("wire.bulkWrite")
				root.SetAttr("writer", w)
				var cwg sync.WaitGroup
				for f := 0; f < fanout; f++ {
					cwg.Add(1)
					go func(f int) {
						defer cwg.Done()
						sh := root.Child("mongos.shard")
						sh.SetAttr("shard", f)
						leaf := sh.Child("storage.bulkWrite")
						clk.Advance(10 * time.Microsecond)
						leaf.Finish()
						sh.Finish()
					}(f)
				}
				cwg.Wait()
				root.Finish()
			}
		}(w)
	}
	// Concurrent readers exercise snapshotting against live mutation.
	var stop atomic.Bool
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for !stop.Load() {
				for _, v := range tr.CurrentOps() {
					if v.Name != "wire.bulkWrite" {
						panic("unexpected in-flight root " + v.Name)
					}
				}
				for _, v := range tr.Traces(16) {
					if len(v.Children) > fanout {
						panic("too many children")
					}
				}
				tr.Stats()
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	rwg.Wait()

	st := tr.Stats()
	if st.Started != writers*iters {
		t.Fatalf("started = %d, want %d", st.Started, writers*iters)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after all finished", st.InFlight)
	}
	if st.Retained+st.Dropped != st.Started {
		t.Fatalf("retained %d + dropped %d != started %d", st.Retained, st.Dropped, st.Started)
	}
	traces := tr.Traces(0)
	if len(traces) != 64 {
		t.Fatalf("ring holds %d, want full 64", len(traces))
	}
	for _, v := range traces {
		if v.InFlight {
			t.Fatalf("completed ring holds in-flight trace %+v", v)
		}
		if len(v.Children) != fanout {
			t.Fatalf("trace has %d children, want %d", len(v.Children), fanout)
		}
	}
}
