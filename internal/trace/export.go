// Span export: every trace the tracer retains can also be pushed to an
// external collector through a pluggable sink. The encoding follows the
// OTLP JSON data model (resourceSpans → scopeSpans → spans, attributes as
// {key, value: {stringValue|intValue|...}} pairs, ids as lowercase hex)
// without importing any OTLP library, so the NDJSON a FileSink writes — and
// the request bodies an HTTPSink posts — are shaped like what an OTLP/HTTP
// collector expects.
//
// Export is strictly off the request path: finishRoot enqueues the finished
// view into a bounded queue and returns; a single drainer goroutine encodes
// and hands batches to the sink. When the queue is full the trace is
// dropped and counted — a slow collector can never stall or block a write.
package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultExportQueue bounds the export queue when NewExporter is given no
// size.
const DefaultExportQueue = 256

// Sink receives encoded trace exports. Export is called from the exporter's
// single drainer goroutine, never concurrently.
type Sink interface {
	// Export delivers one OTLP-shaped JSON document (one complete trace).
	Export(payload []byte) error
	// Close releases the sink (flushes files, etc.).
	Close() error
}

// ExporterStats reports export activity, surfaced as tracer gauges.
type ExporterStats struct {
	Exported int64 // traces handed to the sink successfully
	Dropped  int64 // traces discarded because the queue was full
	Failed   int64 // sink errors (after the sink's own retries)
}

// Exporter drains retained traces to a sink through a bounded non-blocking
// queue. A nil *Exporter is valid and free: every method no-ops.
type Exporter struct {
	sink    Sink
	service string
	queue   chan View

	exported atomic.Int64
	dropped  atomic.Int64
	failed   atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	pending int
	closed  bool
	wg      sync.WaitGroup
}

// NewExporter starts an exporter draining into sink. service names the
// emitting process in the OTLP resource attributes ("docstored" typically);
// queueSize <= 0 uses DefaultExportQueue.
func NewExporter(sink Sink, service string, queueSize int) *Exporter {
	if queueSize <= 0 {
		queueSize = DefaultExportQueue
	}
	if service == "" {
		service = "docstore"
	}
	e := &Exporter{sink: sink, service: service, queue: make(chan View, queueSize)}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(1)
	go e.run()
	return e
}

// enqueue offers a finished trace to the queue without ever blocking.
func (e *Exporter) enqueue(v View) {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.dropped.Add(1)
		return
	}
	select {
	case e.queue <- v:
		e.pending++
		e.mu.Unlock()
	default:
		e.mu.Unlock()
		e.dropped.Add(1)
	}
}

func (e *Exporter) run() {
	defer e.wg.Done()
	for v := range e.queue {
		payload := EncodeOTLP(&v, e.service)
		err := e.sink.Export(payload)
		e.mu.Lock()
		e.pending--
		if err != nil {
			e.failed.Add(1)
		} else {
			e.exported.Add(1)
		}
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// Flush blocks until every trace enqueued before the call has been handed
// to the sink (or failed). Tests and shutdown paths synchronize on it
// instead of sleeping.
func (e *Exporter) Flush() {
	if e == nil {
		return
	}
	e.mu.Lock()
	for e.pending > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Close drains the queue, stops the drainer and closes the sink. Traces
// enqueued after Close are dropped and counted.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.queue)
	e.wg.Wait()
	return e.sink.Close()
}

// Stats returns export counters.
func (e *Exporter) Stats() ExporterStats {
	if e == nil {
		return ExporterStats{}
	}
	return ExporterStats{
		Exported: e.exported.Load(),
		Dropped:  e.dropped.Load(),
		Failed:   e.failed.Load(),
	}
}

// EncodeOTLP renders one finished trace as an OTLP-shaped JSON document.
// Trace ids are zero-padded to the model's 16 bytes (32 hex digits), span
// ids to 8 bytes; int64 values encode as strings, as OTLP JSON prescribes.
func EncodeOTLP(v *View, service string) []byte {
	spans := make([]otlpSpan, 0, 8)
	spans = flattenSpans(spans, v, "")
	doc := otlpExport{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{strAttr("service.name", service)}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "docstore/internal/trace"},
			Spans: spans,
		}},
	}}}
	payload, err := json.Marshal(doc)
	if err != nil {
		// The structs marshal by construction; a failure here is a
		// programming error worth surfacing loudly in the payload itself.
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return payload
}

// flattenSpans appends the view and its subtree in depth-first order,
// deriving each child's parentSpanId from the tree walk.
func flattenSpans(out []otlpSpan, v *View, parent string) []otlpSpan {
	start := v.Start.UnixNano()
	end := start + v.Duration.Nanoseconds()
	sp := otlpSpan{
		TraceID:           pad32(v.TraceID),
		SpanID:            v.SpanID,
		ParentSpanID:      parent,
		Name:              v.Name,
		Kind:              otlpSpanKindInternal,
		StartTimeUnixNano: strconv.FormatInt(start, 10),
		EndTimeUnixNano:   strconv.FormatInt(end, 10),
	}
	for _, a := range v.Attrs {
		sp.Attributes = append(sp.Attributes, attr(a.Key, a.Value))
	}
	out = append(out, sp)
	for i := range v.Children {
		out = flattenSpans(out, &v.Children[i], v.SpanID)
	}
	return out
}

// pad32 widens a 16-hex-digit trace id to the OTLP model's 32 hex digits.
func pad32(id string) string {
	if len(id) >= 32 {
		return id
	}
	return "0000000000000000"[:32-len(id)] + id
}

// otlpSpanKindInternal is SPAN_KIND_INTERNAL in the OTLP enum.
const otlpSpanKindInternal = 1

type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string   `json:"traceId"`
	SpanID            string   `json:"spanId"`
	ParentSpanID      string   `json:"parentSpanId,omitempty"`
	Name              string   `json:"name"`
	Kind              int      `json:"kind"`
	StartTimeUnixNano string   `json:"startTimeUnixNano"`
	EndTimeUnixNano   string   `json:"endTimeUnixNano"`
	Attributes        []otlpKV `json:"attributes,omitempty"`
}

type otlpKV struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

// otlpValue is the OTLP AnyValue one-of: exactly one field is set.
type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

func strAttr(k, v string) otlpKV {
	return otlpKV{Key: k, Value: otlpValue{StringValue: &v}}
}

func attr(k string, v any) otlpKV {
	switch x := v.(type) {
	case string:
		return strAttr(k, x)
	case bool:
		b := x
		return otlpKV{Key: k, Value: otlpValue{BoolValue: &b}}
	case float64:
		f := x
		return otlpKV{Key: k, Value: otlpValue{DoubleValue: &f}}
	case int:
		s := strconv.FormatInt(int64(x), 10)
		return otlpKV{Key: k, Value: otlpValue{IntValue: &s}}
	case int64:
		s := strconv.FormatInt(x, 10)
		return otlpKV{Key: k, Value: otlpValue{IntValue: &s}}
	default:
		return strAttr(k, fmt.Sprintf("%v", v))
	}
}

// MemorySink retains exported payloads in memory for tests.
type MemorySink struct {
	mu       sync.Mutex
	payloads [][]byte
}

// Export appends a copy of the payload.
func (m *MemorySink) Export(payload []byte) error {
	m.mu.Lock()
	m.payloads = append(m.payloads, append([]byte(nil), payload...))
	m.mu.Unlock()
	return nil
}

// Close is a no-op.
func (m *MemorySink) Close() error { return nil }

// Exports returns the retained payloads, oldest first.
func (m *MemorySink) Exports() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([][]byte(nil), m.payloads...)
}

// FileSink appends exports to a file as NDJSON: one OTLP-shaped document
// per line.
type FileSink struct {
	mu sync.Mutex
	w  io.WriteCloser
}

// NewFileSink opens (appending) the NDJSON file at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileSink{w: f}, nil
}

// Export writes the payload and a newline.
func (s *FileSink) Export(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(payload); err != nil {
		return err
	}
	_, err := s.w.Write([]byte{'\n'})
	return err
}

// Close closes the file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}

// HTTPSink POSTs each export to an OTLP-style collector endpoint with
// bounded retry and exponential backoff. The sleep function is injectable
// so tests exercise the retry schedule without wall-clock naps.
type HTTPSink struct {
	url     string
	client  *http.Client
	retries int
	backoff time.Duration
	sleep   func(time.Duration)
}

// HTTPSinkOptions tunes an HTTPSink; zero values select the defaults
// (2 retries after the first attempt, 50ms initial backoff, doubling).
type HTTPSinkOptions struct {
	Client  *http.Client
	Retries int
	Backoff time.Duration
	Sleep   func(time.Duration)
}

// NewHTTPSink builds a sink posting to url.
func NewHTTPSink(url string, opts HTTPSinkOptions) *HTTPSink {
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff == 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &HTTPSink{
		url:     url,
		client:  opts.Client,
		retries: opts.Retries,
		backoff: opts.Backoff,
		sleep:   opts.Sleep,
	}
}

// Export posts the payload, retrying transient failures (transport errors
// and 5xx responses) with exponential backoff. 4xx responses are permanent:
// retrying a payload the collector rejects cannot succeed.
func (s *HTTPSink) Export(payload []byte) error {
	delay := s.backoff
	var lastErr error
	for attempt := 0; attempt <= s.retries; attempt++ {
		if attempt > 0 {
			s.sleep(delay)
			delay *= 2
		}
		resp, err := s.client.Post(s.url, "application/json", bytes.NewReader(payload))
		if err != nil {
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode < 300:
			return nil
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return fmt.Errorf("trace export: collector rejected payload: %s", resp.Status)
		default:
			lastErr = fmt.Errorf("trace export: %s", resp.Status)
		}
	}
	return lastErr
}

// Close is a no-op: the sink holds no resources beyond the shared client.
func (s *HTTPSink) Close() error { return nil }
