package replset

import (
	"time"

	"docstore/internal/bson"
	"docstore/internal/metrics"
)

// MemberHealth is one member's replication health: its position in the
// oplog, how far behind the tip it is, and when it last made progress.
type MemberHealth struct {
	// Member is the member server's name; Primary marks the current
	// primary.
	Member  string
	Primary bool
	// Applied is the member's last applied oplog sequence; Lag is the tip
	// minus Applied (the LSN delta a catch-up must close), clamped at 0 for
	// a rolled-back member awaiting resync.
	Applied int64
	Lag     int64
	// LastApply is when Applied last advanced (zero before any apply);
	// ApplyAge is now minus LastApply, 0 when LastApply is zero. A small
	// Lag with a large ApplyAge means the member is caught up but the set
	// is idle; a growing Lag with a growing ApplyAge means the applier is
	// stuck.
	LastApply time.Time
	ApplyAge  time.Duration
	// Down marks a member killed by fault injection.
	Down bool
}

// Health snapshots every member's replication health, in member order. The
// primary reports zero lag by construction (its applied watermark IS the
// tip it defines).
func (rs *ReplicaSet) Health() []MemberHealth {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	now := rs.now()
	tip := rs.tipLocked()
	out := make([]MemberHealth, 0, len(rs.members))
	for i, m := range rs.members {
		name := m.Name()
		h := MemberHealth{
			Member:    name,
			Primary:   i == rs.primary,
			Applied:   rs.applied[name],
			LastApply: rs.lastApply[name],
			Down:      rs.down[name],
		}
		if lag := tip - h.Applied; lag > 0 {
			h.Lag = lag
		}
		if !h.LastApply.IsZero() {
			if age := now.Sub(h.LastApply); age > 0 {
				h.ApplyAge = age
			}
		}
		out = append(out, h)
	}
	return out
}

// HealthDocs renders Health as wire documents: the serverStatus "repl"
// member list. The wire layer reaches it through an interface assertion so
// it does not import this package.
func (rs *ReplicaSet) HealthDocs() []*bson.Doc {
	health := rs.Health()
	out := make([]*bson.Doc, 0, len(health))
	for _, h := range health {
		state := "secondary"
		if h.Primary {
			state = "primary"
		}
		if h.Down {
			state = "down"
		}
		doc := bson.D(
			"name", h.Member,
			"state", state,
			"applied", h.Applied,
			"lag", h.Lag,
			"applyAgeUS", int64(h.ApplyAge/time.Microsecond),
		)
		out = append(out, doc)
	}
	return out
}

// HealthGauges renders Health as labeled Prometheus gauges, one series per
// member: docstored registers it as a gauge source so /metrics exports
// per-member replication lag and apply age.
func (rs *ReplicaSet) HealthGauges() []metrics.Gauge {
	health := rs.Health()
	out := make([]metrics.Gauge, 0, 3*len(health))
	for _, h := range health {
		labels := []string{"member", h.Member, "set", rs.name}
		out = append(out,
			metrics.Gauge{Name: "docstore_replset_member_lag", Value: h.Lag, Labels: labels},
			metrics.Gauge{Name: "docstore_replset_member_applied", Value: h.Applied, Labels: labels},
			metrics.Gauge{Name: "docstore_replset_member_apply_age_ns", Value: int64(h.ApplyAge), Unit: "ns", Labels: labels},
		)
	}
	return out
}

// SetClock replaces the set's wall clock; tests inject one so lag ages are
// deterministic without sleeping.
func (rs *ReplicaSet) SetClock(now func() time.Time) {
	rs.mu.Lock()
	rs.now = now
	rs.mu.Unlock()
}
