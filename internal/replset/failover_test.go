package replset

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/mongos"
	"docstore/internal/sharding"
	"docstore/internal/storage"
)

// TestFailoverEquivalence steps the primary down under concurrent unordered
// bulk writes and proves the surviving document set equals the acknowledged
// set at every layer: each member's storage, the replica set's query
// surface, and a mongos routing through the set. Writes acked at w:majority
// must all survive the election; writes the failover window rejected must
// not be required to survive — and nothing outside the attempted set may
// appear.
func TestFailoverEquivalence(t *testing.T) {
	rs := newTestSet(t, 3)
	rs.StartReplication()
	defer rs.Close()

	const writers, attempts = 3, 30
	type outcome struct {
		id    string
		acked bool
	}
	results := make(chan outcome, writers*attempts)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < attempts; j++ {
				id := fmt.Sprintf("w%d-%d", w, j)
				res := rs.BulkWrite("db", "c", []storage.WriteOp{
					storage.InsertWriteOp(bson.D("_id", id)),
				}, storage.BulkOptions{WriteConcern: storage.WriteConcern{Majority: true}})
				err := res.DurabilityErr
				if err == nil {
					err = res.FirstError()
				}
				if err != nil && !isFailoverRejection(err) {
					panic(fmt.Sprintf("write %s failed outside the failover contract: %v", id, err))
				}
				results <- outcome{id: id, acked: err == nil}
			}
		}(w)
	}

	// Fail the primary over mid-flight: wait for enough outcomes that writes
	// are demonstrably in progress, then kill and re-elect while the rest
	// race. The drained outcomes still count below.
	early := make([]outcome, 0, writers*attempts/4)
	for n := 0; n < writers*attempts/4; n++ {
		early = append(early, <-results)
	}
	old := rs.Primary().Name()
	if err := rs.Kill(old); err != nil {
		t.Fatal(err)
	}
	next := rs.StepDown()
	if next.Name() == old {
		t.Fatal("step down re-elected the killed primary")
	}
	wg.Wait()
	close(results)

	acked := make(map[string]bool)
	attempted := make(map[string]bool)
	record := func(o outcome) {
		attempted[o.id] = true
		if o.acked {
			acked[o.id] = true
		}
	}
	for _, o := range early {
		record(o)
	}
	for o := range results {
		record(o)
	}
	if len(acked) == 0 {
		t.Fatal("no write acked; the failover window swallowed everything")
	}

	// The deposed primary rejoins (wiped and rebuilt if it held rolled-back
	// entries) and every member converges on the surviving log.
	if err := rs.Restart(old); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Storage layer: every member holds the identical set; that set contains
	// every acked id and nothing outside the attempted set.
	survivors := memberIDs(t, rs, rs.Members()[0].Name())
	for _, m := range rs.Members() {
		got := memberIDs(t, rs, m.Name())
		if len(got) != len(survivors) {
			t.Fatalf("member %s holds %d docs, member %s holds %d: set diverged",
				m.Name(), len(got), rs.Members()[0].Name(), len(survivors))
		}
		for id := range survivors {
			if !got[id] {
				t.Fatalf("member %s is missing %s", m.Name(), id)
			}
		}
	}
	for id := range acked {
		if !survivors[id] {
			t.Fatalf("acked write %s lost in failover", id)
		}
	}
	for id := range survivors {
		if !attempted[id] {
			t.Fatalf("document %s appeared out of nowhere", id)
		}
	}

	// Replica-set query layer: the primary read path reports the same set.
	docs, err := rs.Find(ReadPrimary, "db", "c", nil, storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(survivors) {
		t.Fatalf("rs.Find sees %d docs, storage holds %d", len(docs), len(survivors))
	}

	// Mongos layer: a router fronting the set (registered post-election, so
	// it routes to the new primary) reads the same set, and a routed
	// majority write still acknowledges and reaches every member.
	router := mongos.NewRouter(sharding.NewConfigServer(), mongos.Options{})
	router.AddReplicaShard("rs0", rs)
	n, err := router.Count("db", "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(survivors) {
		t.Fatalf("mongos counts %d docs, storage holds %d", n, len(survivors))
	}
	res := router.BulkWrite("db", "c", []storage.WriteOp{
		storage.InsertWriteOp(bson.D("_id", "post-failover")),
	}, storage.BulkOptions{WriteConcern: storage.WriteConcern{Majority: true}})
	if res.DurabilityErr != nil {
		t.Fatalf("routed majority write after failover: %v", res.DurabilityErr)
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, m := range rs.Members() {
		if m.Database("db").Collection("c").FindID("post-failover") == nil {
			t.Fatalf("post-failover routed write missing on member %s", m.Name())
		}
	}
}

// isFailoverRejection reports whether a write error is one the failover
// contract allows: the primary was down, or the acknowledgement failed with
// a structured WriteConcernError (rolled back / quorum unreachable). Any
// other failure is a bug.
func isFailoverRejection(err error) bool {
	if errors.Is(err, ErrPrimaryDown) {
		return true
	}
	var wce *storage.WriteConcernError
	return errors.As(err, &wce)
}

// memberIDs collects the _id set of db.c on the named member.
func memberIDs(t *testing.T, rs *ReplicaSet, name string) map[string]bool {
	t.Helper()
	ids := make(map[string]bool)
	for _, m := range rs.Members() {
		if m.Name() != name {
			continue
		}
		docs, err := m.Database("db").Collection("c").Find(nil, storage.FindOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range docs {
			id, _ := d.GetOr("_id", "").(string)
			ids[id] = true
		}
	}
	return ids
}
