package replset

import (
	"testing"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

func newTestSet(t *testing.T, members int) *ReplicaSet {
	t.Helper()
	servers := make([]*mongod.Server, members)
	for i := range servers {
		servers[i] = mongod.NewServer(mongod.Options{Name: string(rune('A' + i))})
	}
	rs, err := New("rs0", servers...)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestNewRequiresMembers(t *testing.T) {
	if _, err := New("rs0"); err == nil {
		t.Fatalf("empty member list should fail")
	}
	rs := newTestSet(t, 3)
	if rs.Name() != "rs0" {
		t.Fatalf("Name = %q", rs.Name())
	}
	if rs.Primary().Name() != "A" {
		t.Fatalf("primary = %q", rs.Primary().Name())
	}
	if len(rs.Secondaries()) != 2 || len(rs.Members()) != 3 {
		t.Fatalf("membership wrong")
	}
}

func TestWriteReplicationAndLag(t *testing.T) {
	rs := newTestSet(t, 3)
	for i := 0; i < 20; i++ {
		if _, err := rs.Insert("db", "c", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if rs.OplogLength() != 20 {
		t.Fatalf("oplog length = %d", rs.OplogLength())
	}
	lag := rs.ReplicationLag()
	if lag["B"] != 20 || lag["C"] != 20 {
		t.Fatalf("lag before sync = %v", lag)
	}
	applied, err := rs.Sync()
	if err != nil || applied != 40 {
		t.Fatalf("Sync applied %d, %v", applied, err)
	}
	lag = rs.ReplicationLag()
	if lag["B"] != 0 || lag["C"] != 0 {
		t.Fatalf("lag after sync = %v", lag)
	}
	// Every member has the same data.
	for _, m := range rs.Members() {
		if got := m.Database("db").Collection("c").Count(); got != 20 {
			t.Fatalf("member %s has %d docs", m.Name(), got)
		}
	}
	// Updates and deletes replicate too.
	if _, err := rs.Update("db", "c", query.UpdateSpec{
		Query: bson.D("v", bson.D("$lt", 5)), Update: bson.D("$set", bson.D("small", true)), Multi: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Delete("db", "c", bson.D("v", bson.D("$gte", 15)), true); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, m := range rs.Members() {
		coll := m.Database("db").Collection("c")
		if coll.Count() != 15 {
			t.Fatalf("member %s count = %d after delete", m.Name(), coll.Count())
		}
		small, _ := coll.CountDocs(bson.D("small", true))
		if small != 5 {
			t.Fatalf("member %s small count = %d", m.Name(), small)
		}
	}
	// Idempotent: a second sync applies nothing.
	applied, _ = rs.Sync()
	if applied != 0 {
		t.Fatalf("second sync applied %d entries", applied)
	}
}

func TestReadPreferences(t *testing.T) {
	rs := newTestSet(t, 2)
	if _, err := rs.Insert("db", "c", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	// Before syncing, a primary read sees the document but a secondary read
	// does not (eventual consistency).
	docs, err := rs.Find(ReadPrimary, "db", "c", nil, storage.FindOptions{})
	if err != nil || len(docs) != 1 {
		t.Fatalf("primary read = %d docs, %v", len(docs), err)
	}
	docs, err = rs.Find(ReadSecondary, "db", "c", nil, storage.FindOptions{})
	if err != nil || len(docs) != 0 {
		t.Fatalf("stale secondary read = %d docs, %v", len(docs), err)
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	docs, _ = rs.Find(ReadSecondary, "db", "c", nil, storage.FindOptions{})
	if len(docs) != 1 {
		t.Fatalf("secondary read after sync = %d docs", len(docs))
	}
	// Nearest rotates across members without failing.
	for i := 0; i < 4; i++ {
		if _, err := rs.Find(ReadNearest, "db", "c", nil, storage.FindOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Single-member set serves "secondary" reads from the primary.
	single := newTestSet(t, 1)
	if _, err := single.Insert("db", "c", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	docs, _ = single.Find(ReadSecondary, "db", "c", nil, storage.FindOptions{})
	if len(docs) != 1 {
		t.Fatalf("single-member secondary read = %d docs", len(docs))
	}
}

// TestWALSourcedOplogConvergence drives a replica set whose oplog is backed
// by a WAL, "crashes" it, rebuilds a fresh set from the durable log alone,
// and checks that a secondary replaying the WAL-sourced oplog entries
// converges to exactly the primary's state.
func TestWALSourcedOplogConvergence(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rs := newTestSet(t, 2)
	rs.AttachWAL(w)
	for i := 0; i < 12; i++ {
		if _, err := rs.Insert("db", "c", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rs.Update("db", "c", query.UpdateSpec{
		Query: bson.D("v", bson.D("$lt", 4)), Update: bson.D("$set", bson.D("low", true)), Multi: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Delete("db", "c", bson.D("v", bson.D("$gte", 10)), true); err != nil {
		t.Fatal(err)
	}
	wantPrimary := rs.Primary()
	// Crash: abandon the set; the WAL is the only survivor.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rs2 := newTestSet(t, 2)
	loaded, err := rs2.LoadOplogFromWAL(dir)
	if err != nil {
		t.Fatalf("LoadOplogFromWAL: %v", err)
	}
	if loaded != 14 {
		t.Fatalf("loaded %d oplog entries, want 14", loaded)
	}
	applied, err := rs2.ApplyAll()
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	if applied != 28 {
		t.Fatalf("applied %d entries across members, want 28", applied)
	}
	// Every member converged to the original primary's state.
	for _, m := range rs2.Members() {
		coll := m.Database("db").Collection("c")
		wantColl := wantPrimary.Database("db").Collection("c")
		if coll.Count() != wantColl.Count() {
			t.Fatalf("member %s has %d docs, want %d", m.Name(), coll.Count(), wantColl.Count())
		}
		wantColl.Scan(func(d *bson.Doc) bool {
			got := coll.FindID(d.ID())
			if got == nil || !got.Equal(d) {
				t.Fatalf("member %s diverges at _id %v", m.Name(), d.ID())
			}
			return true
		})
	}
	// New writes continue from the recovered sequence and replicate.
	if _, err := rs2.Insert("db", "c", bson.D(bson.IDKey, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := rs2.Sync(); err != nil {
		t.Fatal(err)
	}
	lag := rs2.ReplicationLag()
	for name, n := range lag {
		if n != 0 {
			t.Fatalf("member %s lag = %d after sync", name, n)
		}
	}
}

// TestUpsertReplicatesDeterministically pins the post-image logging rule:
// an upsert that inserts generates its _id on the primary, and the oplog
// must carry that document — not the update spec — or every member would
// generate its own _id and diverge.
func TestUpsertReplicatesDeterministically(t *testing.T) {
	rs := newTestSet(t, 2)
	res, err := rs.Update("db", "c", query.UpdateSpec{
		Query:  bson.D("missing", true),
		Update: bson.D("$set", bson.D("created", true)),
		Upsert: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UpsertedID == nil {
		t.Fatal("upsert did not insert")
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, m := range rs.Members() {
		doc := m.Database("db").Collection("c").FindID(res.UpsertedID)
		if doc == nil {
			t.Fatalf("member %s missing upserted _id %v (divergent generated ids)", m.Name(), res.UpsertedID)
		}
	}
}

func TestStepDownPromotesMostCaughtUpSecondary(t *testing.T) {
	rs := newTestSet(t, 3)
	for i := 0; i < 10; i++ {
		if _, err := rs.Insert("db", "c", bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	old := rs.Primary().Name()
	newPrimary := rs.StepDown()
	if newPrimary.Name() == old {
		t.Fatalf("step down did not change the primary")
	}
	// Writes continue through the new primary and still replicate.
	if _, err := rs.Insert("db", "c", bson.D(bson.IDKey, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, m := range rs.Members() {
		if got := m.Database("db").Collection("c").Count(); got != 11 {
			t.Fatalf("member %s count after failover = %d", m.Name(), got)
		}
	}
	// Single-member sets keep their primary.
	single := newTestSet(t, 1)
	if single.StepDown().Name() != single.Primary().Name() {
		t.Fatalf("single member step down changed primary")
	}
}

// TestFindCursorPinsMemberSnapshot checks a replica-set read cursor pins its
// member's committed version: replicated writes landing mid-drain do not
// leak into the open cursor.
func TestFindCursorPinsMemberSnapshot(t *testing.T) {
	rs := newTestSet(t, 2)
	for i := 0; i < 60; i++ {
		if _, err := rs.Insert("db", "rows", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := rs.Find(ReadPrimary, "db", "rows", nil, storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cur, err := rs.FindCursor(ReadPrimary, "db", "rows", nil, storage.FindOptions{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	var got []*bson.Doc
	for {
		b := cur.NextBatch()
		if len(b) == 0 {
			break
		}
		got = append(got, b...)
		if _, err := rs.Insert("db", "rows", bson.D(bson.IDKey, 1000+len(got))); err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Update("db", "rows", query.UpdateSpec{
			Query: bson.D(), Update: bson.D("$set", bson.D("v", -7)), Multi: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("cursor drained %d docs, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs from at-open state: %s", i, got[i])
		}
	}
	// Secondaries converge on the post-write state once synced.
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	docs, err := rs.Find(ReadSecondary, "db", "rows", bson.D("v", -7), storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatalf("secondary missed the replicated update")
	}
}
