package replset

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// Fault-injection suites: kill and restart members while concurrent bulk
// writes (and a change-stream tail) are in flight, then prove the two
// replication invariants — no acknowledged write is lost, and no entry is
// applied twice — by inspecting every member after catch-up. A counter
// document incremented by $inc detects double application: a replayed insert
// of a duplicate _id is silently rejected, but a replayed $inc would leave
// n == 2.

// counterBatch is one ordered [insert {_id, n: 0}, {$inc: {n: 1}}] pair.
func counterBatch(id string) []storage.WriteOp {
	return []storage.WriteOp{
		storage.InsertWriteOp(bson.D("_id", id, "n", 0)),
		storage.UpdateWriteOp(query.UpdateSpec{
			Query:  bson.D("_id", id),
			Update: bson.D("$inc", bson.D("n", 1)),
		}),
	}
}

// toggleMember flips one member down and up as fast as the scheduler allows
// until stop is closed, leaving the member alive.
func toggleMember(rs *ReplicaSet, name string, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			_ = rs.Restart(name)
			return
		default:
		}
		_ = rs.Kill(name)
		runtime.Gosched()
		_ = rs.Restart(name)
		runtime.Gosched()
	}
}

// assertCountersApplied checks one member holds exactly ids, each with n == 1.
func assertCountersApplied(t *testing.T, m *mongod.Server, ids []string) {
	t.Helper()
	coll := m.Database("db").Collection("c")
	if got := coll.Count(); got != len(ids) {
		t.Fatalf("member %s has %d docs, want %d", m.Name(), got, len(ids))
	}
	for _, id := range ids {
		doc := coll.FindID(id)
		if doc == nil {
			t.Fatalf("acked write %s lost on member %s", id, m.Name())
		}
		if n, _ := bson.AsInt(doc.GetOr("n", nil)); n != 1 {
			t.Fatalf("write %s applied %d times on member %s, want exactly once", id, n, m.Name())
		}
	}
}

func TestFaultInjectionKillRestartMidBulkWrite(t *testing.T) {
	rs := newTestSet(t, 3)
	rs.StartReplication()
	defer rs.Close()

	const writers, batches = 4, 25
	stop := make(chan struct{})
	var killer sync.WaitGroup
	killer.Add(1)
	go func() {
		defer killer.Done()
		toggleMember(rs, "B", stop) // A (primary) and C stay up: majority always reachable
	}()

	var wg sync.WaitGroup
	errs := make(chan error, writers*batches)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < batches; j++ {
				id := fmt.Sprintf("w%d-%d", w, j)
				res := rs.BulkWrite("db", "c", counterBatch(id), storage.BulkOptions{
					Ordered:      true,
					WriteConcern: storage.WriteConcern{Majority: true},
				})
				if res.DurabilityErr != nil {
					errs <- fmt.Errorf("batch %s: %w", id, res.DurabilityErr)
					return
				}
				if err := res.FirstError(); err != nil {
					errs <- fmt.Errorf("batch %s op error: %w", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	killer.Wait()
	close(errs)
	for err := range errs {
		// A and C form a live majority throughout, so every write must ack.
		t.Fatal(err)
	}

	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, writers*batches)
	for w := 0; w < writers; w++ {
		for j := 0; j < batches; j++ {
			ids = append(ids, fmt.Sprintf("w%d-%d", w, j))
		}
	}
	for _, m := range rs.Members() {
		assertCountersApplied(t, m, ids)
	}
}

// TestFaultInjectionMidChangeStreamTail runs the same kill/restart storm
// while a change stream tails the primary: after catch-up the stream must
// have delivered exactly one insert and one update event per acknowledged
// batch — a lost event would break downstream consumers the same way a lost
// write would, and a duplicate is the stream-side face of a double apply.
func TestFaultInjectionMidChangeStreamTail(t *testing.T) {
	primary := mongod.NewServer(mongod.Options{Name: "A"})
	if _, err := primary.EnableDurability(mongod.Durability{Dir: t.TempDir(), Sync: wal.SyncGroupCommit}); err != nil {
		t.Fatal(err)
	}
	defer primary.CloseDurability()
	members := []*mongod.Server{
		primary,
		mongod.NewServer(mongod.Options{Name: "B"}),
		mongod.NewServer(mongod.Options{Name: "C"}),
	}
	rs, err := New("rs0", members...)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := primary.Watch("db", "c", mongod.WatchOptions{BufferSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	rs.StartReplication()
	defer rs.Close()

	const writers, batches = 2, 25
	stop := make(chan struct{})
	var killer sync.WaitGroup
	killer.Add(1)
	go func() {
		defer killer.Done()
		toggleMember(rs, "B", stop)
	}()

	var wg sync.WaitGroup
	errs := make(chan error, writers*batches)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < batches; j++ {
				id := fmt.Sprintf("w%d-%d", w, j)
				res := rs.BulkWrite("db", "c", counterBatch(id), storage.BulkOptions{
					Ordered: true,
					// j: true makes the primary's fsync — which publishes the
					// events — part of the acknowledgement, so after the last
					// ack every event is either delivered or buffered.
					WriteConcern: storage.WriteConcern{Majority: true, Journal: true},
				})
				if res.DurabilityErr != nil {
					errs <- fmt.Errorf("batch %s: %w", id, res.DurabilityErr)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	killer.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}

	inserts := make(map[string]int)
	updates := make(map[string]int)
	for seen := 0; seen < writers*batches*2; seen++ {
		ev, err := sub.Next(5 * time.Second)
		if err != nil {
			t.Fatalf("stream died after %d events: %v", seen, err)
		}
		if ev == nil {
			t.Fatalf("stream dried up after %d events, want %d", seen, writers*batches*2)
		}
		id, _ := ev.DocumentKey.GetOr("_id", "").(string)
		switch ev.OpType {
		case changestream.OpInsert:
			inserts[id]++
		case changestream.OpUpdate:
			updates[id]++
		default:
			t.Fatalf("unexpected %s event for %q", ev.OpType, id)
		}
	}
	for w := 0; w < writers; w++ {
		for j := 0; j < batches; j++ {
			id := fmt.Sprintf("w%d-%d", w, j)
			if inserts[id] != 1 || updates[id] != 1 {
				t.Fatalf("batch %s delivered %d insert / %d update events, want exactly 1/1", id, inserts[id], updates[id])
			}
		}
	}
	for _, m := range rs.Members() {
		if got := m.Database("db").Collection("c").Count(); got != writers*batches {
			t.Fatalf("member %s has %d docs, want %d", m.Name(), got, writers*batches)
		}
	}
}
