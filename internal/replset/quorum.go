// Quorum replication: background per-member appliers, write-concern waiters,
// fault injection (kill/restart), and rollback-epoch resync. The lifecycle
// is StartReplication → writes via BulkWrite block in AwaitReplication until
// enough members have applied their oplog entry → Close. Without
// StartReplication the set behaves as before: writes acknowledge at the
// primary and secondaries converge through Sync/ApplyAll.
package replset

import (
	"errors"
	"sort"
	"time"

	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// ErrPrimaryDown reports a write routed to a killed primary. The set stays
// writable again once StepDown elects a live member or Restart revives the
// old one.
var ErrPrimaryDown = errors.New("replset: primary is down; step down to elect a new one")

// quorumWaiter is one write blocked in AwaitReplication. err is written
// under rs.mu before done is closed, so a receiver on done reads it safely.
type quorumWaiter struct {
	lsn  int64
	need int
	wstr string
	err  error
	done chan struct{}
}

// defaultWCTimer is the production wtimeout source: a real timer, or no
// deadline channel at all for wtimeout 0 (wait indefinitely). Tests inject
// their own source via SetWTimeoutTimer so wtimeout expiry is a test-driven
// event, never a sleep race.
func defaultWCTimer(d time.Duration) (<-chan time.Time, func() bool) {
	if d <= 0 {
		return nil, func() bool { return false }
	}
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// SetWTimeoutTimer replaces the wtimeout timer source. f receives the
// concern's WTimeout and returns the expiry channel plus a stop function; a
// nil channel means no deadline. Call before the set accepts writes.
func (rs *ReplicaSet) SetWTimeoutTimer(f func(time.Duration) (<-chan time.Time, func() bool)) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.wcTimer = f
}

// SetDefaultWriteConcern sets the concern applied to writes that do not
// carry one (rs.Insert/Update/Delete, and BulkWrite with a zero
// BulkOptions.WriteConcern). Call before the set accepts writes.
func (rs *ReplicaSet) SetDefaultWriteConcern(wc storage.WriteConcern) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.defaultWC = wc
}

// DefaultWriteConcern returns the concern set by SetDefaultWriteConcern.
func (rs *ReplicaSet) DefaultWriteConcern() storage.WriteConcern {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.defaultWC
}

// StartReplication launches one applier goroutine per member. Each applier
// tails the oplog from its member's applied watermark, so secondaries catch
// up continuously instead of waiting for Sync, and quorum waiters resolve as
// appliers advance. Idempotent while running; pair with Close.
func (rs *ReplicaSet) StartReplication() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.replicating || rs.closed {
		return
	}
	rs.replicating = true
	for _, m := range rs.members {
		rs.appliers.Add(1)
		go rs.applyLoop(m)
	}
}

// Replicating reports whether background appliers are running.
func (rs *ReplicaSet) Replicating() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.replicating
}

// Close stops the appliers and fails every outstanding quorum waiter with a
// "replica set closed" WriteConcernError. Idempotent. The member servers
// themselves are left untouched — they belong to the caller.
func (rs *ReplicaSet) Close() {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return
	}
	rs.closed = true
	for w := range rs.waiters {
		w.err = &storage.WriteConcernError{W: w.wstr, Replicated: rs.ackCountLocked(w.lsn), Reason: "replica set closed"}
		close(w.done)
		delete(rs.waiters, w)
	}
	rs.replCond.Broadcast()
	rs.mu.Unlock()
	rs.appliers.Wait()
}

// Kill marks a member down: its applier parks, it stops serving reads, and
// writes fail with ErrPrimaryDown if it was the primary. Waiters whose
// quorum just became unreachable fail immediately rather than hang until
// wtimeout. The member's data is left intact — a kill models a crashed
// process whose disk survives.
func (rs *ReplicaSet) Kill(name string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.hasMemberLocked(name) {
		return errors.New("replset: no member named " + name)
	}
	rs.down[name] = true
	rs.failUnreachableWaitersLocked()
	rs.replCond.Broadcast()
	return nil
}

// Restart revives a killed member. Its applier resumes from the applied
// watermark — or, if an election rolled back entries the member had applied,
// wipes it and replays the surviving log from the start — before the member
// counts toward any quorum again.
func (rs *ReplicaSet) Restart(name string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.hasMemberLocked(name) {
		return errors.New("replset: no member named " + name)
	}
	delete(rs.down, name)
	rs.replCond.Broadcast()
	return nil
}

// Alive reports whether the named member is not currently killed.
func (rs *ReplicaSet) Alive(name string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.hasMemberLocked(name) && !rs.down[name]
}

func (rs *ReplicaSet) hasMemberLocked(name string) bool {
	for _, m := range rs.members {
		if m.Name() == name {
			return true
		}
	}
	return false
}

// MarkApplied records that a member's state already reflects the log up to
// lsn without replaying anything. It is the restart fast path for a member
// that rebuilt itself through its own recovery — docstored's primary
// replays its storage WAL, then the reloaded oplog (LoadOplogFromWAL) must
// not be replayed onto it a second time.
func (rs *ReplicaSet) MarkApplied(name string, lsn int64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.hasMemberLocked(name) {
		return
	}
	if lsn > rs.applied[name] {
		rs.applied[name] = lsn
	}
	rs.memberEpoch[name] = rs.epoch
	rs.checkWaitersLocked()
	rs.replCond.Broadcast()
}

// BulkWrite executes a batch through the primary, appends one oplog record
// for it under the same lock hold (log order equals apply order), and blocks
// until the effective write concern is satisfied: the oplog commit is
// durable per the WAL sync policy (fsynced when j is set), and W members —
// primary included — have applied the entry. On wtimeout, quorum loss, or
// rollback the batch result carries a *storage.WriteConcernError in
// DurabilityErr; the write itself has still applied on the primary and
// keeps replicating in the background.
func (rs *ReplicaSet) BulkWrite(db, coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	rs.mu.Lock()
	wc := opts.WriteConcern
	if wc.IsZero() {
		wc = rs.defaultWC
	}
	if opts.Journaled {
		wc.Journal = true
	}
	primary := rs.members[rs.primary]
	if rs.down[primary.Name()] {
		rs.mu.Unlock()
		return storage.BulkResult{DurabilityErr: ErrPrimaryDown}
	}
	// The parent span rides down to the primary's mongod and storage layers
	// through the options; the oplog and quorum waits below attach their own
	// children so a trace shows where a w>1 write spent its time.
	res := primary.Database(db).BulkWrite(coll, ops, storage.BulkOptions{Ordered: opts.Ordered, Journaled: wc.Journal, Trace: opts.Trace})
	rec := &wal.Record{
		Kind: wal.KindBatch, DB: db, Coll: coll, Ordered: opts.Ordered,
		Ops: loggedOps(primary, db, coll, ops, &res),
	}
	commit, err := rs.appendOplogLocked(rec)
	if err != nil {
		rs.mu.Unlock()
		if res.DurabilityErr == nil {
			res.DurabilityErr = err
		}
		return res
	}
	lsn := rec.LSN
	// Register the quorum waiter under the same lock hold as the append: if
	// an election truncates this entry in the gap before a later
	// registration, no applier would ever reach the LSN and the wait would
	// hang. Registered here, rollbackLocked fails the waiter instead.
	var w *quorumWaiter
	var timer func(time.Duration) (<-chan time.Time, func() bool)
	if need := wc.NeedAck(len(rs.members)); need > 1 && rs.ackCountLocked(lsn) < need {
		w = &quorumWaiter{lsn: lsn, need: need, wstr: wc.WString(), done: make(chan struct{})}
		rs.waiters[w] = struct{}{}
		rs.failUnreachableWaitersLocked() // quorum may be impossible already
		timer = rs.wcTimer
	}
	rs.mu.Unlock()
	res.LastLSN = lsn // the oplog LSN, which quorum waits key on
	oplogSpan := opts.Trace.Child("replset.oplogCommitWait")
	oplogSpan.SetAttr("lsn", lsn)
	if derr := waitOplog(commit, wc.Journal); derr != nil && res.DurabilityErr == nil {
		res.DurabilityErr = derr
	}
	oplogSpan.Finish()
	if w != nil {
		quorumSpan := opts.Trace.Child("replset.quorumWait")
		quorumSpan.SetAttr("w", wc.WString())
		quorumSpan.SetAttr("need", w.need)
		// Always drain the waiter — it must leave rs.waiters even when the
		// batch already failed at the durability layer.
		if qerr := rs.waitQuorum(w, lsn, wc, timer); qerr != nil && res.DurabilityErr == nil {
			res.DurabilityErr = qerr
		}
		quorumSpan.Finish()
	}
	return res
}

// loggedOps builds the replication record for an executed batch. Inserts
// are logged as their post-apply clone (the primary assigned any missing
// _id in place, so every member materializes the identical document), and
// an update that upserted is rewritten as an insert of its post-image for
// the same reason. Failed or unattempted ops are logged verbatim: replay
// fails them identically, which is convergence.
func loggedOps(primary *mongod.Server, db, coll string, ops []storage.WriteOp, res *storage.BulkResult) []storage.WriteOp {
	logged := make([]storage.WriteOp, len(ops))
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case storage.InsertOp:
			logged[i] = storage.InsertWriteOp(cloneOrNil(op.Doc))
		case storage.UpdateOp:
			if res.UpsertedIDs != nil && res.UpsertedIDs[i] != nil {
				if doc := primary.Database(db).Collection(coll).FindID(res.UpsertedIDs[i]); doc != nil {
					logged[i] = storage.InsertWriteOp(doc.Clone())
					continue
				}
			}
			logged[i] = storage.UpdateWriteOp(query.UpdateSpec{
				Query: cloneOrNil(op.Update.Query), Update: cloneOrNil(op.Update.Update),
				Upsert: op.Update.Upsert, Multi: op.Update.Multi,
			})
		default:
			logged[i] = storage.DeleteWriteOp(cloneOrNil(op.Filter), op.Multi)
		}
	}
	return logged
}

// AwaitReplication blocks until wc.NeedAck members have applied the oplog
// entry at lsn, the concern's wtimeout expires, or the quorum becomes
// impossible (members down, entry rolled back, set closed). A non-nil error
// is always a *storage.WriteConcernError carrying how many members had
// applied the entry when the wait failed.
func (rs *ReplicaSet) AwaitReplication(lsn int64, wc storage.WriteConcern) error {
	rs.mu.Lock()
	need := wc.NeedAck(len(rs.members))
	if rs.ackCountLocked(lsn) >= need {
		rs.mu.Unlock()
		return nil
	}
	if rs.closed {
		replicated := rs.ackCountLocked(lsn)
		rs.mu.Unlock()
		return &storage.WriteConcernError{W: wc.WString(), Replicated: replicated, Reason: "replica set closed"}
	}
	if lsn > rs.tipLocked() {
		// The entry was truncated by an election; no applier will ever reach
		// this LSN, so waiting would hang forever.
		rs.mu.Unlock()
		return &storage.WriteConcernError{W: wc.WString(), Replicated: 0, Reason: "rolled back"}
	}
	w := &quorumWaiter{lsn: lsn, need: need, wstr: wc.WString(), done: make(chan struct{})}
	rs.waiters[w] = struct{}{}
	rs.failUnreachableWaitersLocked() // quorum may be impossible already
	timer := rs.wcTimer
	rs.mu.Unlock()
	return rs.waitQuorum(w, lsn, wc, timer)
}

// waitQuorum blocks on a registered waiter until it resolves or the
// concern's wtimeout fires, whichever is first. It always unregisters the
// waiter before returning.
func (rs *ReplicaSet) waitQuorum(w *quorumWaiter, lsn int64, wc storage.WriteConcern, timer func(time.Duration) (<-chan time.Time, func() bool)) error {
	deadline, stop := timer(wc.WTimeout)
	defer stop()
	select {
	case <-w.done:
		return w.err
	case <-deadline:
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, pending := rs.waiters[w]; !pending {
		return w.err // resolved concurrently with the deadline firing
	}
	delete(rs.waiters, w)
	return &storage.WriteConcernError{W: wc.WString(), Replicated: rs.ackCountLocked(lsn), Reason: "wtimeout"}
}

// ackCountLocked counts members whose applied watermark covers lsn. A down
// member still counts: it applied the entry before dying, and its copy
// survives the crash (Kill models a process crash, not disk loss).
func (rs *ReplicaSet) ackCountLocked(lsn int64) int {
	n := 0
	for _, m := range rs.members {
		if rs.applied[m.Name()] >= lsn {
			n++
		}
	}
	return n
}

// checkWaitersLocked resolves every waiter whose quorum is now satisfied.
func (rs *ReplicaSet) checkWaitersLocked() {
	for w := range rs.waiters {
		if rs.ackCountLocked(w.lsn) >= w.need {
			w.err = nil
			close(w.done)
			delete(rs.waiters, w)
		}
	}
}

// failUnreachableWaitersLocked fails every waiter whose quorum can no
// longer be reached: the members that already applied the entry plus the
// live members that still could are fewer than the concern demands.
// Without this, a w:majority write with a majority of members killed would
// hang until wtimeout (or forever).
func (rs *ReplicaSet) failUnreachableWaitersLocked() {
	for w := range rs.waiters {
		acked := rs.ackCountLocked(w.lsn)
		potential := acked
		for _, m := range rs.members {
			if !rs.down[m.Name()] && rs.applied[m.Name()] < w.lsn {
				potential++
			}
		}
		if potential < w.need {
			w.err = &storage.WriteConcernError{W: w.wstr, Replicated: acked, Reason: "quorum unreachable"}
			close(w.done)
			delete(rs.waiters, w)
		}
	}
}

// applyLoop is one member's background applier: it tails the oplog from the
// member's applied watermark, parking while the member is down or caught
// up, and resyncing from scratch when an election rolled back entries the
// member had applied (its epoch went stale).
func (rs *ReplicaSet) applyLoop(m *mongod.Server) {
	defer rs.appliers.Done()
	name := m.Name()
	for {
		rs.mu.Lock()
		var entry *OplogEntry
		for {
			if rs.closed {
				rs.mu.Unlock()
				return
			}
			if !rs.down[name] {
				if rs.memberEpoch[name] != rs.epoch {
					break // diverged: resync below
				}
				if e := rs.nextEntryLocked(name); e != nil {
					entry = e
					break
				}
			}
			rs.replCond.Wait()
		}
		if rs.memberEpoch[name] != rs.epoch {
			// The member applied (or was applying) entries an election
			// discarded; its state is no prefix of the surviving log. Undo by
			// rebuilding: wipe everything, reset the watermark, replay.
			rs.memberEpoch[name] = rs.epoch
			rs.applied[name] = 0
			rs.mu.Unlock()
			wipeMember(m)
			continue
		}
		e := *entry
		rs.applying[name] = e.Seq()
		rs.mu.Unlock()
		// Apply errors are deliberately dropped — see applyEntry's batch
		// case: deterministic replay of the primary's own failure is
		// convergence, and infrastructure errors on a volatile member have
		// nothing to escalate to. The entry is still marked applied so the
		// applier cannot spin on it.
		_ = applyEntry(m, e)
		rs.mu.Lock()
		rs.applying[name] = 0
		if rs.memberEpoch[name] == rs.epoch && rs.applied[name] < e.Seq() {
			rs.applied[name] = e.Seq()
			rs.lastApply[name] = rs.now()
			rs.checkWaitersLocked()
			rs.replCond.Broadcast()
		}
		rs.mu.Unlock()
	}
}

// nextEntryLocked returns the first retained oplog entry past the member's
// applied watermark, nil when caught up.
func (rs *ReplicaSet) nextEntryLocked(name string) *OplogEntry {
	last := rs.applied[name]
	i := sort.Search(len(rs.oplog), func(i int) bool { return rs.oplog[i].Seq() > last })
	if i >= len(rs.oplog) {
		return nil
	}
	return &rs.oplog[i]
}

// waitCaughtUpLocked blocks until every live, epoch-current member has
// applied the oplog tip. Killed members are excluded — they catch up on
// Restart — so syncing a degraded set does not hang.
func (rs *ReplicaSet) waitCaughtUpLocked() {
	for !rs.closed {
		tip := rs.tipLocked()
		caughtUp := true
		for _, m := range rs.members {
			name := m.Name()
			if rs.down[name] {
				continue
			}
			if rs.memberEpoch[name] != rs.epoch || rs.applied[name] < tip {
				caughtUp = false
				break
			}
		}
		if caughtUp {
			return
		}
		rs.replCond.Wait()
	}
}

// wipeMember drops every database on a member, the first half of a rollback
// resync.
func wipeMember(m *mongod.Server) {
	for _, db := range m.DatabaseNames() {
		m.DropDatabase(db)
	}
}
