package replset

import (
	"errors"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/storage"
)

// No test in this package may sleep to "give replication time": CI greps for
// wall-clock sleeps in replset tests and fails the build. Timeout expiry is driven
// through the injected wtimeout timer, and ordering through channels and the
// set's own blocking calls (AwaitReplication, Sync, quorum-blocked writes).

func insertOp(pairs ...any) storage.WriteOp {
	return storage.InsertWriteOp(bson.D(pairs...))
}

func wcErr(t *testing.T, err error) *storage.WriteConcernError {
	t.Helper()
	var wce *storage.WriteConcernError
	if !errors.As(err, &wce) {
		t.Fatalf("error %v (%T) is not a WriteConcernError", err, err)
	}
	return wce
}

func TestAwaitReplicationWTimeout(t *testing.T) {
	rs := newTestSet(t, 3) // appliers off: nothing will ever ack beyond the primary

	timerCh := make(chan time.Time)
	var gotTimeout time.Duration
	rs.SetWTimeoutTimer(func(d time.Duration) (<-chan time.Time, func() bool) {
		gotTimeout = d
		return timerCh, func() bool { return false }
	})

	resCh := make(chan storage.BulkResult, 1)
	go func() {
		resCh <- rs.BulkWrite("db", "c", []storage.WriteOp{insertOp("_id", 1)}, storage.BulkOptions{
			Ordered:      true,
			WriteConcern: storage.WriteConcern{Majority: true, WTimeout: 50 * time.Millisecond},
		})
	}()

	// The unbuffered send cannot complete until the writer's select is
	// receiving, i.e. the waiter is registered and blocked on the deadline.
	timerCh <- time.Time{}
	res := <-resCh

	wce := wcErr(t, res.DurabilityErr)
	if wce.Reason != "wtimeout" || wce.W != "majority" || wce.Replicated != 1 {
		t.Fatalf("got %+v, want wtimeout on majority with 1 replica", wce)
	}
	if gotTimeout != 50*time.Millisecond {
		t.Fatalf("timer received %v, want the concern's 50ms", gotTimeout)
	}
	// The write itself applied on the primary and stays in the oplog.
	if rs.Primary().Database("db").Collection("c").FindID(int64(1)) == nil {
		t.Fatal("timed-out write missing from primary")
	}
	if rs.OplogLength() != 1 {
		t.Fatalf("oplog length = %d, want 1", rs.OplogLength())
	}
}

func TestQuorumWriteBlocksUntilApplied(t *testing.T) {
	rs := newTestSet(t, 3)
	rs.StartReplication()
	defer rs.Close()

	res := rs.BulkWrite("db", "c", []storage.WriteOp{insertOp("_id", 1), insertOp("_id", 2)}, storage.BulkOptions{
		Ordered:      true,
		WriteConcern: storage.WriteConcern{W: 3},
	})
	if res.DurabilityErr != nil {
		t.Fatalf("w:3 write failed: %v", res.DurabilityErr)
	}
	// w:3 returns only after every member applied — no syncing needed here.
	for _, m := range rs.Members() {
		if got := m.Database("db").Collection("c").Count(); got != 2 {
			t.Fatalf("member %s has %d docs at ack time, want 2", m.Name(), got)
		}
	}
}

func TestDefaultWriteConcernAppliesToScalarWrites(t *testing.T) {
	rs := newTestSet(t, 3)
	rs.SetDefaultWriteConcern(storage.WriteConcern{Majority: true})
	rs.StartReplication()
	defer rs.Close()

	if _, err := rs.Insert("db", "c", bson.D("_id", 1)); err != nil {
		t.Fatalf("insert at default majority: %v", err)
	}
	applied := 0
	for _, m := range rs.Members() {
		if m.Database("db").Collection("c").Count() == 1 {
			applied++
		}
	}
	if applied < 2 {
		t.Fatalf("majority-acked insert visible on %d member(s), want >= 2", applied)
	}
}

func TestKillMakesQuorumUnreachable(t *testing.T) {
	rs := newTestSet(t, 3)
	rs.StartReplication()
	defer rs.Close()

	if err := rs.Kill("B"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Kill("C"); err != nil {
		t.Fatal(err)
	}
	res := rs.BulkWrite("db", "c", []storage.WriteOp{insertOp("_id", 1)}, storage.BulkOptions{
		WriteConcern: storage.WriteConcern{Majority: true},
	})
	wce := wcErr(t, res.DurabilityErr)
	if wce.Reason != "quorum unreachable" || wce.Replicated != 1 {
		t.Fatalf("got %+v, want immediate quorum-unreachable with 1 replica", wce)
	}

	// Reviving one member makes the majority reachable again; the pending
	// entry replicates and a fresh wait on the same LSN succeeds.
	if err := rs.Restart("B"); err != nil {
		t.Fatal(err)
	}
	if err := rs.AwaitReplication(res.LastLSN, storage.WriteConcern{Majority: true}); err != nil {
		t.Fatalf("await after restart: %v", err)
	}
	if !rs.Alive("B") || rs.Alive("C") {
		t.Fatal("liveness flags wrong after kill/restart")
	}
}

func TestPrimaryDownFailsWrites(t *testing.T) {
	rs := newTestSet(t, 3)
	if err := rs.Kill(rs.Primary().Name()); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Insert("db", "c", bson.D("_id", 1)); !errors.Is(err, ErrPrimaryDown) {
		t.Fatalf("insert on killed primary: %v, want ErrPrimaryDown", err)
	}
	if err := rs.Restart(rs.Primary().Name()); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Insert("db", "c", bson.D("_id", 1)); err != nil {
		t.Fatalf("insert after restart: %v", err)
	}
}

func TestElectionRollsBackWaiter(t *testing.T) {
	rs := newTestSet(t, 3) // appliers off: the entry can never reach w:2

	registered := make(chan struct{})
	rs.SetWTimeoutTimer(func(time.Duration) (<-chan time.Time, func() bool) {
		close(registered) // the waiter is in the map before the timer is built
		return nil, func() bool { return false }
	})

	resCh := make(chan storage.BulkResult, 1)
	go func() {
		resCh <- rs.BulkWrite("db", "c", []storage.WriteOp{insertOp("_id", 1)}, storage.BulkOptions{
			WriteConcern: storage.WriteConcern{W: 2},
		})
	}()
	<-registered

	// Crash the primary and elect a successor. No secondary applied anything,
	// so the new primary's log tip is 0 and the waiter's entry is discarded.
	old := rs.Primary().Name()
	if err := rs.Kill(old); err != nil {
		t.Fatal(err)
	}
	next := rs.StepDown()
	if next.Name() == old {
		t.Fatalf("step down re-elected the killed primary %s", old)
	}

	res := <-resCh
	wce := wcErr(t, res.DurabilityErr)
	if wce.Reason != "rolled back" || wce.Replicated != 0 {
		t.Fatalf("got %+v, want rolled-back with 0 surviving replicas", wce)
	}
	if rs.OplogLength() != 0 {
		t.Fatalf("oplog length = %d after rollback, want 0", rs.OplogLength())
	}
}

func TestCloseFailsOutstandingWaiters(t *testing.T) {
	rs := newTestSet(t, 3)

	registered := make(chan struct{})
	rs.SetWTimeoutTimer(func(time.Duration) (<-chan time.Time, func() bool) {
		close(registered)
		return nil, func() bool { return false }
	})

	resCh := make(chan storage.BulkResult, 1)
	go func() {
		resCh <- rs.BulkWrite("db", "c", []storage.WriteOp{insertOp("_id", 1)}, storage.BulkOptions{
			WriteConcern: storage.WriteConcern{Majority: true},
		})
	}()
	<-registered
	rs.Close()

	res := <-resCh
	wce := wcErr(t, res.DurabilityErr)
	if wce.Reason != "replica set closed" {
		t.Fatalf("got %+v, want replica-set-closed", wce)
	}
}

// TestStepDownRollbackResync drives the full rollback/resync cycle in legacy
// (Sync-driven) mode: entries past the new primary's watermark are truncated,
// and the deposed primary — whose state includes discarded writes — is wiped
// and rebuilt from the surviving log when it rejoins.
func TestStepDownRollbackResync(t *testing.T) {
	rs := newTestSet(t, 3)
	for i := 1; i <= 5; i++ {
		if _, err := rs.Insert("db", "c", bson.D("_id", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Two more writes reach only the primary before it crashes.
	for i := 6; i <= 7; i++ {
		if _, err := rs.Insert("db", "c", bson.D("_id", i)); err != nil {
			t.Fatal(err)
		}
	}
	old := rs.Primary().Name()
	if err := rs.Kill(old); err != nil {
		t.Fatal(err)
	}
	next := rs.StepDown()
	if next.Name() == old {
		t.Fatal("step down kept the killed primary")
	}
	if rs.OplogLength() != 5 {
		t.Fatalf("oplog length = %d after election, want 5 (unreplicated tail truncated)", rs.OplogLength())
	}

	if err := rs.Restart(old); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, m := range rs.Members() {
		coll := m.Database("db").Collection("c")
		if coll.Count() != 5 {
			t.Fatalf("member %s has %d docs after resync, want 5", m.Name(), coll.Count())
		}
		for i := 6; i <= 7; i++ {
			if coll.FindID(int64(i)) != nil {
				t.Fatalf("rolled-back doc %d survived on member %s", i, m.Name())
			}
		}
	}
}
