package replset

import (
	"testing"
	"time"

	"docstore/internal/bson"
)

// TestHealthTracksLagAndApplyAge pins the replication-health snapshot with
// an injected clock: lag is the LSN delta to the tip, apply age is wall time
// since the member last advanced, and the primary reports zero lag by
// construction.
func TestHealthTracksLagAndApplyAge(t *testing.T) {
	rs := newTestSet(t, 3)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	now := base
	rs.SetClock(func() time.Time { return now })

	for i := 0; i < 5; i++ {
		if _, err := rs.Insert("db", "c", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(3 * time.Second)

	h := rs.Health()
	if len(h) != 3 {
		t.Fatalf("health members = %d, want 3", len(h))
	}
	if !h[0].Primary || h[0].Member != "A" {
		t.Fatalf("first member = %+v, want primary A", h[0])
	}
	if h[0].Lag != 0 {
		t.Fatalf("primary lag = %d, want 0", h[0].Lag)
	}
	if h[0].LastApply != base || h[0].ApplyAge != 3*time.Second {
		t.Fatalf("primary apply age = %v (last %v), want 3s since %v", h[0].ApplyAge, h[0].LastApply, base)
	}
	for _, m := range h[1:] {
		if m.Primary {
			t.Fatalf("member %s claims primary", m.Member)
		}
		if m.Lag != 5 {
			t.Fatalf("unsynced secondary %s lag = %d, want 5", m.Member, m.Lag)
		}
		if !m.LastApply.IsZero() || m.ApplyAge != 0 {
			t.Fatalf("secondary %s has apply age %v before any apply", m.Member, m.ApplyAge)
		}
	}

	// Sync catches the secondaries up: lag collapses to zero everywhere and
	// their apply stamps take the clock at sync time.
	if _, err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	syncedAt := now
	now = now.Add(time.Second)
	for _, m := range rs.Health() {
		if m.Lag != 0 {
			t.Fatalf("member %s lag after sync = %d", m.Member, m.Lag)
		}
		if m.Member != "A" && (m.LastApply != syncedAt || m.ApplyAge != time.Second) {
			t.Fatalf("member %s apply age = %v (last %v), want 1s since %v", m.Member, m.ApplyAge, m.LastApply, syncedAt)
		}
	}
}

// TestHealthDocsAndGauges checks both render layers over the same snapshot:
// the serverStatus documents carry name/state/lag and the Prometheus gauges
// carry one labeled series triple per member.
func TestHealthDocsAndGauges(t *testing.T) {
	rs := newTestSet(t, 2)
	rs.SetClock(func() time.Time { return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) })
	if _, err := rs.Insert("db", "c", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}

	docs := rs.HealthDocs()
	if len(docs) != 2 {
		t.Fatalf("health docs = %d, want 2", len(docs))
	}
	if state, _ := docs[0].Get("state"); state != "primary" {
		t.Fatalf("member A state = %v", state)
	}
	if state, _ := docs[1].Get("state"); state != "secondary" {
		t.Fatalf("member B state = %v", state)
	}
	if lag, _ := docs[1].Get("lag"); lag != int64(1) {
		t.Fatalf("member B lag doc = %v, want 1", lag)
	}

	gauges := rs.HealthGauges()
	if len(gauges) != 6 {
		t.Fatalf("gauges = %d, want 3 per member", len(gauges))
	}
	var lagB int64 = -1
	for _, g := range gauges {
		if len(g.Labels) != 4 || g.Labels[0] != "member" || g.Labels[2] != "set" || g.Labels[3] != "rs0" {
			t.Fatalf("gauge labels = %v", g.Labels)
		}
		if g.Name == "docstore_replset_member_lag" && g.Labels[1] == "B" {
			lagB = g.Value
		}
	}
	if lagB != 1 {
		t.Fatalf("member B lag gauge = %d, want 1", lagB)
	}
}
