// Package replset implements a minimal replica set: a primary that accepts
// writes, secondaries that apply the primary's oplog, read preferences, and
// fail-over by promotion. The thesis describes replica sets as the
// redundancy mechanism backing shards (§2.1.3.1); the sharded experiments use
// single-member shards, so this package exists to complete the substrate and
// is exercised by its own tests and the ablation benchmarks.
package replset

import (
	"fmt"
	"sync"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// ReadPreference selects which member serves reads.
type ReadPreference int

// Read preferences.
const (
	ReadPrimary ReadPreference = iota
	ReadSecondary
	ReadNearest
)

// OpType identifies an oplog operation.
type OpType string

// Oplog operation types.
const (
	OpInsert OpType = "i"
	OpUpdate OpType = "u"
	OpDelete OpType = "d"
)

// OplogEntry is one replicated operation.
type OplogEntry struct {
	Seq        int64
	At         time.Time
	Op         OpType
	Database   string
	Collection string
	Document   *bson.Doc // insert payload
	Filter     *bson.Doc // update/delete selector
	Update     *bson.Doc // update payload
	Multi      bool
}

// ReplicaSet is a primary plus a set of secondaries.
type ReplicaSet struct {
	name string

	mu          sync.Mutex
	members     []*mongod.Server
	primary     int
	oplog       []OplogEntry
	applied     map[string]int64 // member name -> last applied seq
	nextSeq     int64
	chainedRead int // round-robin cursor for ReadNearest
}

// New creates a replica set with the given member servers; the first member
// starts as primary.
func New(name string, members ...*mongod.Server) (*ReplicaSet, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("replset: at least one member is required")
	}
	rs := &ReplicaSet{name: name, members: members, applied: make(map[string]int64)}
	for _, m := range members {
		rs.applied[m.Name()] = 0
	}
	return rs, nil
}

// Name returns the replica set name.
func (rs *ReplicaSet) Name() string { return rs.name }

// Primary returns the current primary member.
func (rs *ReplicaSet) Primary() *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.members[rs.primary]
}

// Secondaries returns the current secondary members.
func (rs *ReplicaSet) Secondaries() []*mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []*mongod.Server
	for i, m := range rs.members {
		if i != rs.primary {
			out = append(out, m)
		}
	}
	return out
}

// Members returns every member.
func (rs *ReplicaSet) Members() []*mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]*mongod.Server(nil), rs.members...)
}

// OplogLength returns the number of oplog entries retained.
func (rs *ReplicaSet) OplogLength() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.oplog)
}

// Insert writes through the primary and appends an oplog entry.
func (rs *ReplicaSet) Insert(db, coll string, doc *bson.Doc) (any, error) {
	rs.mu.Lock()
	primary := rs.members[rs.primary]
	rs.mu.Unlock()
	id, err := primary.Database(db).Insert(coll, doc)
	if err != nil {
		return nil, err
	}
	rs.appendOplog(OplogEntry{Op: OpInsert, Database: db, Collection: coll, Document: doc.Clone()})
	return id, nil
}

// Update writes through the primary and appends an oplog entry.
func (rs *ReplicaSet) Update(db, coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	rs.mu.Lock()
	primary := rs.members[rs.primary]
	rs.mu.Unlock()
	res, err := primary.Database(db).Update(coll, spec)
	if err != nil {
		return res, err
	}
	rs.appendOplog(OplogEntry{
		Op: OpUpdate, Database: db, Collection: coll,
		Filter: cloneOrNil(spec.Query), Update: cloneOrNil(spec.Update), Multi: spec.Multi,
	})
	return res, nil
}

// Delete writes through the primary and appends an oplog entry.
func (rs *ReplicaSet) Delete(db, coll string, filter *bson.Doc, multi bool) (int, error) {
	rs.mu.Lock()
	primary := rs.members[rs.primary]
	rs.mu.Unlock()
	n, err := primary.Database(db).Delete(coll, filter, multi)
	if err != nil {
		return n, err
	}
	rs.appendOplog(OplogEntry{Op: OpDelete, Database: db, Collection: coll, Filter: cloneOrNil(filter), Multi: multi})
	return n, nil
}

func cloneOrNil(d *bson.Doc) *bson.Doc {
	if d == nil {
		return nil
	}
	return d.Clone()
}

func (rs *ReplicaSet) appendOplog(e OplogEntry) {
	rs.mu.Lock()
	rs.nextSeq++
	e.Seq = rs.nextSeq
	e.At = time.Now()
	rs.oplog = append(rs.oplog, e)
	primaryName := rs.members[rs.primary].Name()
	rs.applied[primaryName] = e.Seq
	rs.mu.Unlock()
}

// Sync applies pending oplog entries to every secondary, bringing the set to
// a consistent state. It returns the number of entries applied across
// members.
func (rs *ReplicaSet) Sync() (int, error) {
	rs.mu.Lock()
	oplog := append([]OplogEntry(nil), rs.oplog...)
	members := append([]*mongod.Server(nil), rs.members...)
	primaryIdx := rs.primary
	applied := make(map[string]int64, len(rs.applied))
	for k, v := range rs.applied {
		applied[k] = v
	}
	rs.mu.Unlock()

	total := 0
	for i, m := range members {
		if i == primaryIdx {
			continue
		}
		last := applied[m.Name()]
		for _, e := range oplog {
			if e.Seq <= last {
				continue
			}
			if err := applyEntry(m, e); err != nil {
				return total, fmt.Errorf("replset: applying op %d to %s: %w", e.Seq, m.Name(), err)
			}
			last = e.Seq
			total++
		}
		rs.mu.Lock()
		rs.applied[m.Name()] = last
		rs.mu.Unlock()
	}
	return total, nil
}

func applyEntry(m *mongod.Server, e OplogEntry) error {
	db := m.Database(e.Database)
	switch e.Op {
	case OpInsert:
		_, err := db.Insert(e.Collection, e.Document.Clone())
		return err
	case OpUpdate:
		_, err := db.Update(e.Collection, query.UpdateSpec{Query: e.Filter, Update: e.Update, Multi: e.Multi})
		return err
	case OpDelete:
		_, err := db.Delete(e.Collection, e.Filter, e.Multi)
		return err
	default:
		return fmt.Errorf("unknown oplog op %q", e.Op)
	}
}

// ReplicationLag returns, per secondary, how many oplog entries it has not
// yet applied.
func (rs *ReplicaSet) ReplicationLag() map[string]int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]int64)
	for i, m := range rs.members {
		if i == rs.primary {
			continue
		}
		out[m.Name()] = rs.nextSeq - rs.applied[m.Name()]
	}
	return out
}

// Find reads from a member chosen by the read preference.
func (rs *ReplicaSet) Find(pref ReadPreference, db, coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	member := rs.pickMember(pref)
	return member.Database(db).Find(coll, filter, opts)
}

func (rs *ReplicaSet) pickMember(pref ReadPreference) *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	switch pref {
	case ReadPrimary:
		return rs.members[rs.primary]
	case ReadSecondary:
		for i, m := range rs.members {
			if i != rs.primary {
				return m
			}
		}
		return rs.members[rs.primary]
	default:
		rs.chainedRead++
		return rs.members[rs.chainedRead%len(rs.members)]
	}
}

// StepDown demotes the current primary and elects the secondary with the
// most applied oplog entries, returning the new primary. With a single
// member the primary is retained.
func (rs *ReplicaSet) StepDown() *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.members) == 1 {
		return rs.members[rs.primary]
	}
	best, bestApplied := -1, int64(-1)
	for i, m := range rs.members {
		if i == rs.primary {
			continue
		}
		if a := rs.applied[m.Name()]; a > bestApplied {
			best, bestApplied = i, a
		}
	}
	if best >= 0 {
		rs.primary = best
	}
	return rs.members[rs.primary]
}
