// Package replset implements a minimal replica set: a primary that accepts
// writes, secondaries that apply the primary's oplog, read preferences, and
// fail-over by promotion. The thesis describes replica sets as the
// redundancy mechanism backing shards (§2.1.3.1); the sharded experiments use
// single-member shards, so this package exists to complete the substrate and
// is exercised by its own tests and the ablation benchmarks.
//
// Since the durability subsystem landed, the oplog and the write-ahead log
// share one format: every oplog entry carries a wal.Record, the same logical
// batch record the storage engine journals. A replica set can therefore be
// given its own WAL (AttachWAL) to make the oplog durable, and an oplog can
// be reloaded from any WAL directory (LoadOplogFromWAL) so secondaries
// converge by replaying exactly what recovery would replay.
package replset

import (
	"fmt"
	"sync"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// ReadPreference selects which member serves reads.
type ReadPreference int

// Read preferences.
const (
	ReadPrimary ReadPreference = iota
	ReadSecondary
	ReadNearest
)

// OplogEntry is one replicated operation: a WAL record plus the wall-clock
// time the primary accepted it. The entry's sequence number is the record's
// LSN — assigned by the attached WAL when the oplog is durable, or by the
// in-memory counter otherwise, so both modes produce the same log.
type OplogEntry struct {
	At     time.Time
	Record *wal.Record
}

// Seq returns the entry's sequence number.
func (e *OplogEntry) Seq() int64 { return e.Record.LSN }

// ReplicaSet is a primary plus a set of secondaries.
type ReplicaSet struct {
	name string

	mu          sync.Mutex
	members     []*mongod.Server
	primary     int
	oplog       []OplogEntry
	wal         *wal.WAL         // nil: volatile oplog with in-memory seqs
	applied     map[string]int64 // member name -> last applied seq
	nextSeq     int64
	chainedRead int // round-robin cursor for ReadNearest
}

// New creates a replica set with the given member servers; the first member
// starts as primary.
func New(name string, members ...*mongod.Server) (*ReplicaSet, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("replset: at least one member is required")
	}
	rs := &ReplicaSet{name: name, members: members, applied: make(map[string]int64)}
	for _, m := range members {
		rs.applied[m.Name()] = 0
	}
	return rs, nil
}

// AttachWAL makes the oplog durable: every subsequent entry is appended to w
// (which assigns its LSN) and acknowledged under w's sync policy before the
// write returns. Call it once, before the set starts accepting writes; the
// WAL must be empty or positioned after the current oplog (its next LSN is
// adopted as the sequence counter).
func (rs *ReplicaSet) AttachWAL(w *wal.WAL) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.wal = w
	rs.nextSeq = w.LastLSN()
}

// LoadOplogFromWAL reads every record of a WAL directory into the oplog
// buffer, replacing its contents. It is how a restarted set (or a test
// standing in for one) resumes replication from the durable log: secondaries
// then converge through the ordinary Sync/ApplyAll path. No member is marked
// as having applied anything; pair it with ApplyAll to rebuild member state.
func (rs *ReplicaSet) LoadOplogFromWAL(dir string) (int, error) {
	records, err := wal.ReadAll(dir)
	if err != nil {
		return 0, err
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.oplog = rs.oplog[:0]
	rs.nextSeq = 0
	for _, rec := range records {
		rs.oplog = append(rs.oplog, OplogEntry{At: time.Now(), Record: rec})
		rs.nextSeq = rec.LSN
	}
	for name := range rs.applied {
		rs.applied[name] = 0
	}
	return len(rs.oplog), nil
}

// Name returns the replica set name.
func (rs *ReplicaSet) Name() string { return rs.name }

// Primary returns the current primary member.
func (rs *ReplicaSet) Primary() *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.members[rs.primary]
}

// Secondaries returns the current secondary members.
func (rs *ReplicaSet) Secondaries() []*mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []*mongod.Server
	for i, m := range rs.members {
		if i != rs.primary {
			out = append(out, m)
		}
	}
	return out
}

// Members returns every member.
func (rs *ReplicaSet) Members() []*mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]*mongod.Server(nil), rs.members...)
}

// OplogLength returns the number of oplog entries retained.
func (rs *ReplicaSet) OplogLength() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.oplog)
}

// Oplog returns a copy of the retained oplog entries in sequence order.
func (rs *ReplicaSet) Oplog() []OplogEntry {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]OplogEntry(nil), rs.oplog...)
}

// Insert writes through the primary and appends an oplog entry. The apply
// and the oplog append happen under one lock hold, so oplog order always
// equals the primary's apply order — two concurrent writes can never land
// in the durable log in the opposite order they executed, which is what
// makes replaying the log (on a secondary or after a restart) converge to
// the primary's state. Writes through the set are serialized as a result.
func (rs *ReplicaSet) Insert(db, coll string, doc *bson.Doc) (any, error) {
	rs.mu.Lock()
	primary := rs.members[rs.primary]
	id, err := primary.Database(db).Insert(coll, doc)
	if err != nil {
		rs.mu.Unlock()
		return nil, err
	}
	commit, err := rs.appendOplogLocked(&wal.Record{
		Kind: wal.KindBatch, DB: db, Coll: coll, Ordered: true,
		Ops: []storage.WriteOp{storage.InsertWriteOp(doc.Clone())},
	})
	rs.mu.Unlock()
	if err != nil {
		return id, err
	}
	return id, waitOplog(commit)
}

// Update writes through the primary and appends an oplog entry; see Insert
// for the ordering contract.
func (rs *ReplicaSet) Update(db, coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	rs.mu.Lock()
	primary := rs.members[rs.primary]
	res, err := primary.Database(db).Update(coll, spec)
	if err != nil {
		rs.mu.Unlock()
		return res, err
	}
	var op storage.WriteOp
	if res.UpsertedID != nil {
		// The upsert inserted a document whose generated _id only the
		// primary knows; log the post-image as an insert so every member
		// (and a WAL replay) materializes the identical document instead of
		// re-running the upsert and generating its own _id.
		if doc := primary.Database(db).Collection(coll).FindID(res.UpsertedID); doc != nil {
			op = storage.InsertWriteOp(doc.Clone())
		}
	}
	if op.Doc == nil {
		logged := query.UpdateSpec{
			Query: cloneOrNil(spec.Query), Update: cloneOrNil(spec.Update),
			Upsert: spec.Upsert, Multi: spec.Multi,
		}
		op = storage.UpdateWriteOp(logged)
	}
	commit, err := rs.appendOplogLocked(&wal.Record{
		Kind: wal.KindBatch, DB: db, Coll: coll, Ordered: true,
		Ops: []storage.WriteOp{op},
	})
	rs.mu.Unlock()
	if err != nil {
		return res, err
	}
	return res, waitOplog(commit)
}

// Delete writes through the primary and appends an oplog entry; see Insert
// for the ordering contract.
func (rs *ReplicaSet) Delete(db, coll string, filter *bson.Doc, multi bool) (int, error) {
	rs.mu.Lock()
	primary := rs.members[rs.primary]
	n, err := primary.Database(db).Delete(coll, filter, multi)
	if err != nil {
		rs.mu.Unlock()
		return n, err
	}
	commit, err := rs.appendOplogLocked(&wal.Record{
		Kind: wal.KindBatch, DB: db, Coll: coll, Ordered: true,
		Ops: []storage.WriteOp{storage.DeleteWriteOp(cloneOrNil(filter), multi)},
	})
	rs.mu.Unlock()
	if err != nil {
		return n, err
	}
	return n, waitOplog(commit)
}

func cloneOrNil(d *bson.Doc) *bson.Doc {
	if d == nil {
		return nil
	}
	return d.Clone()
}

// appendOplogLocked stamps and retains one record under the caller's hold
// of rs.mu. With a WAL attached the record is appended there — which
// assigns its LSN — and the returned commit is waited on (waitOplog) after
// the lock is released so concurrent oplog fsyncs can group-commit; without
// one the in-memory counter assigns the sequence and the commit is nil.
func (rs *ReplicaSet) appendOplogLocked(rec *wal.Record) (*wal.Commit, error) {
	var commit *wal.Commit
	if rs.wal != nil {
		var err error
		commit, err = rs.wal.Append(rec)
		if err != nil {
			return nil, fmt.Errorf("replset: oplog append: %w", err)
		}
		rs.nextSeq = rec.LSN
	} else {
		rs.nextSeq++
		rec.LSN = rs.nextSeq
	}
	rs.oplog = append(rs.oplog, OplogEntry{At: time.Now(), Record: rec})
	primaryName := rs.members[rs.primary].Name()
	rs.applied[primaryName] = rec.LSN
	return commit, nil
}

// waitOplog resolves a durable-oplog commit after rs.mu is released.
func waitOplog(commit *wal.Commit) error {
	if commit == nil {
		return nil
	}
	return commit.Wait(false)
}

// Sync applies pending oplog entries to every secondary, bringing the set to
// a consistent state. It returns the number of entries applied across
// members.
func (rs *ReplicaSet) Sync() (int, error) {
	return rs.sync(false)
}

// ApplyAll applies pending oplog entries to every member, primary included.
// It is the catch-up path after LoadOplogFromWAL, where no member has the
// oplog's state yet.
func (rs *ReplicaSet) ApplyAll() (int, error) {
	return rs.sync(true)
}

func (rs *ReplicaSet) sync(includePrimary bool) (int, error) {
	rs.mu.Lock()
	oplog := append([]OplogEntry(nil), rs.oplog...)
	members := append([]*mongod.Server(nil), rs.members...)
	primaryIdx := rs.primary
	applied := make(map[string]int64, len(rs.applied))
	for k, v := range rs.applied {
		applied[k] = v
	}
	rs.mu.Unlock()

	total := 0
	for i, m := range members {
		if i == primaryIdx && !includePrimary {
			continue
		}
		last := applied[m.Name()]
		for _, e := range oplog {
			if e.Seq() <= last {
				continue
			}
			if err := applyEntry(m, e); err != nil {
				return total, fmt.Errorf("replset: applying op %d to %s: %w", e.Seq(), m.Name(), err)
			}
			last = e.Seq()
			total++
		}
		rs.mu.Lock()
		if last > rs.applied[m.Name()] {
			rs.applied[m.Name()] = last
		}
		rs.mu.Unlock()
	}
	return total, nil
}

// applyEntry replays one oplog record against a member. The record is cloned
// before applying because inserted documents are stored by reference and
// every member needs its own copy.
func applyEntry(m *mongod.Server, e OplogEntry) error {
	rec := e.Record.Clone()
	switch rec.Kind {
	case wal.KindBatch:
		res := m.Database(rec.DB).BulkWrite(rec.Coll, rec.Ops, storage.BulkOptions{Ordered: rec.Ordered})
		return res.FirstError()
	case wal.KindClear:
		m.Database(rec.DB).Collection(rec.Coll).Drop()
		return nil
	case wal.KindDropCollection:
		m.Database(rec.DB).DropCollection(rec.Coll)
		return nil
	case wal.KindDropDatabase:
		m.DropDatabase(rec.DB)
		return nil
	case wal.KindEnsureIndex:
		_, err := m.Database(rec.DB).Collection(rec.Coll).EnsureIndexDoc(rec.Spec, rec.Unique)
		return err
	case wal.KindDropIndex:
		m.Database(rec.DB).Collection(rec.Coll).DropIndex(rec.Index)
		return nil
	default:
		return fmt.Errorf("unknown oplog record kind %v", rec.Kind)
	}
}

// ReplicationLag returns, per secondary, how many oplog entries it has not
// yet applied.
func (rs *ReplicaSet) ReplicationLag() map[string]int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]int64)
	for i, m := range rs.members {
		if i == rs.primary {
			continue
		}
		out[m.Name()] = rs.nextSeq - rs.applied[m.Name()]
	}
	return out
}

// Find reads from a member chosen by the read preference.
func (rs *ReplicaSet) Find(pref ReadPreference, db, coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	member := rs.pickMember(pref)
	return member.Database(db).Find(coll, filter, opts)
}

// FindCursor opens a streaming cursor on a member chosen by the read
// preference. The cursor pins the member's committed storage version at
// open, so a long drain observes one point-in-time state of that member
// even while replication keeps applying oplog entries underneath it — a
// secondary read never blocks behind the apply stream, and the apply stream
// never waits for slow readers.
func (rs *ReplicaSet) FindCursor(pref ReadPreference, db, coll string, filter *bson.Doc, opts storage.FindOptions) (*storage.Cursor, error) {
	member := rs.pickMember(pref)
	return member.Database(db).FindCursor(coll, filter, opts)
}

func (rs *ReplicaSet) pickMember(pref ReadPreference) *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	switch pref {
	case ReadPrimary:
		return rs.members[rs.primary]
	case ReadSecondary:
		for i, m := range rs.members {
			if i != rs.primary {
				return m
			}
		}
		return rs.members[rs.primary]
	default:
		rs.chainedRead++
		return rs.members[rs.chainedRead%len(rs.members)]
	}
}

// StepDown demotes the current primary and elects the secondary with the
// most applied oplog entries, returning the new primary. With a single
// member the primary is retained.
func (rs *ReplicaSet) StepDown() *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.members) == 1 {
		return rs.members[rs.primary]
	}
	best, bestApplied := -1, int64(-1)
	for i, m := range rs.members {
		if i == rs.primary {
			continue
		}
		if a := rs.applied[m.Name()]; a > bestApplied {
			best, bestApplied = i, a
		}
	}
	if best >= 0 {
		rs.primary = best
	}
	return rs.members[rs.primary]
}
