// Package replset implements a minimal replica set: a primary that accepts
// writes, secondaries that apply the primary's oplog, read preferences, and
// fail-over by promotion. The thesis describes replica sets as the
// redundancy mechanism backing shards (§2.1.3.1); the sharded experiments use
// single-member shards, so this package exists to complete the substrate and
// is exercised by its own tests and the ablation benchmarks.
//
// Since the durability subsystem landed, the oplog and the write-ahead log
// share one format: every oplog entry carries a wal.Record, the same logical
// batch record the storage engine journals. A replica set can therefore be
// given its own WAL (AttachWAL) to make the oplog durable, and an oplog can
// be reloaded from any WAL directory (LoadOplogFromWAL) so secondaries
// converge by replaying exactly what recovery would replay.
package replset

import (
	"fmt"
	"sync"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// ReadPreference selects which member serves reads.
type ReadPreference int

// Read preferences.
const (
	ReadPrimary ReadPreference = iota
	ReadSecondary
	ReadNearest
)

// OplogEntry is one replicated operation: a WAL record plus the wall-clock
// time the primary accepted it. The entry's sequence number is the record's
// LSN — assigned by the attached WAL when the oplog is durable, or by the
// in-memory counter otherwise, so both modes produce the same log.
type OplogEntry struct {
	At     time.Time
	Record *wal.Record
}

// Seq returns the entry's sequence number.
func (e *OplogEntry) Seq() int64 { return e.Record.LSN }

// ReplicaSet is a primary plus a set of secondaries.
type ReplicaSet struct {
	name string

	// now is the set's clock (injectable in tests): it stamps oplog entries
	// and the per-member apply timestamps behind the health gauges.
	now func() time.Time

	mu          sync.Mutex
	replCond    *sync.Cond // signals oplog growth, applier progress, liveness flips
	members     []*mongod.Server
	primary     int
	oplog       []OplogEntry
	wal         *wal.WAL             // nil: volatile oplog with in-memory seqs
	applied     map[string]int64     // member name -> last applied seq
	applying    map[string]int64     // member name -> seq its applier holds outside the lock (0: none)
	lastApply   map[string]time.Time // member name -> when applied last advanced
	nextSeq     int64
	chainedRead int // round-robin cursor for ReadNearest

	// Quorum replication state; the machinery lives in quorum.go.
	replicating bool
	closed      bool
	down        map[string]bool // member name -> killed by fault injection
	epoch       int64
	memberEpoch map[string]int64 // member name -> rollback epoch its state belongs to
	waiters     map[*quorumWaiter]struct{}
	defaultWC   storage.WriteConcern
	wcTimer     func(time.Duration) (<-chan time.Time, func() bool)
	appliers    sync.WaitGroup
}

// New creates a replica set with the given member servers; the first member
// starts as primary.
func New(name string, members ...*mongod.Server) (*ReplicaSet, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("replset: at least one member is required")
	}
	rs := &ReplicaSet{
		name:        name,
		now:         time.Now,
		members:     members,
		applied:     make(map[string]int64),
		applying:    make(map[string]int64),
		lastApply:   make(map[string]time.Time),
		down:        make(map[string]bool),
		memberEpoch: make(map[string]int64),
		waiters:     make(map[*quorumWaiter]struct{}),
		wcTimer:     defaultWCTimer,
	}
	rs.replCond = sync.NewCond(&rs.mu)
	for _, m := range members {
		rs.applied[m.Name()] = 0
	}
	return rs, nil
}

// AttachWAL makes the oplog durable: every subsequent entry is appended to w
// (which assigns its LSN) and acknowledged under w's sync policy before the
// write returns. Call it once, before the set starts accepting writes; the
// WAL must be empty or positioned after the current oplog (its next LSN is
// adopted as the sequence counter).
func (rs *ReplicaSet) AttachWAL(w *wal.WAL) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.wal = w
	rs.nextSeq = w.LastLSN()
}

// LoadOplogFromWAL reads every record of a WAL directory into the oplog
// buffer, replacing its contents. It is how a restarted set (or a test
// standing in for one) resumes replication from the durable log: secondaries
// then converge through the ordinary Sync/ApplyAll path. No member is marked
// as having applied anything; pair it with ApplyAll to rebuild member state.
func (rs *ReplicaSet) LoadOplogFromWAL(dir string) (int, error) {
	records, err := wal.ReadAll(dir)
	if err != nil {
		return 0, err
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.oplog = rs.oplog[:0]
	rs.nextSeq = 0
	for _, rec := range records {
		rs.oplog = append(rs.oplog, OplogEntry{At: rs.now(), Record: rec})
		rs.nextSeq = rec.LSN
	}
	for name := range rs.applied {
		rs.applied[name] = 0
		rs.memberEpoch[name] = rs.epoch
	}
	return len(rs.oplog), nil
}

// Name returns the replica set name.
func (rs *ReplicaSet) Name() string { return rs.name }

// Primary returns the current primary member.
func (rs *ReplicaSet) Primary() *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.members[rs.primary]
}

// Secondaries returns the current secondary members.
func (rs *ReplicaSet) Secondaries() []*mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []*mongod.Server
	for i, m := range rs.members {
		if i != rs.primary {
			out = append(out, m)
		}
	}
	return out
}

// Members returns every member.
func (rs *ReplicaSet) Members() []*mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]*mongod.Server(nil), rs.members...)
}

// OplogLength returns the number of oplog entries retained.
func (rs *ReplicaSet) OplogLength() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.oplog)
}

// Oplog returns a copy of the retained oplog entries in sequence order.
func (rs *ReplicaSet) Oplog() []OplogEntry {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]OplogEntry(nil), rs.oplog...)
}

// Insert writes through the primary and appends an oplog entry. The apply
// and the oplog append happen under one lock hold, so oplog order always
// equals the primary's apply order — two concurrent writes can never land
// in the durable log in the opposite order they executed, which is what
// makes replaying the log (on a secondary or after a restart) converge to
// the primary's state. Writes through the set are serialized as a result.
// Acknowledgement honours the set's default write concern (w: 1 unless
// SetDefaultWriteConcern raised it); BulkWrite takes an explicit concern.
func (rs *ReplicaSet) Insert(db, coll string, doc *bson.Doc) (any, error) {
	res := rs.BulkWrite(db, coll, []storage.WriteOp{storage.InsertWriteOp(doc)}, storage.BulkOptions{Ordered: true})
	var id any
	if len(res.InsertedIDs) > 0 {
		id = res.InsertedIDs[0]
	}
	return id, res.FirstError()
}

// Update writes through the primary and appends an oplog entry; see Insert
// for the ordering and acknowledgement contract.
func (rs *ReplicaSet) Update(db, coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	res := rs.BulkWrite(db, coll, []storage.WriteOp{storage.UpdateWriteOp(spec)}, storage.BulkOptions{Ordered: true})
	ur := storage.UpdateResult{Matched: res.Matched, Modified: res.Modified}
	if len(res.UpsertedIDs) > 0 {
		ur.UpsertedID = res.UpsertedIDs[0]
	}
	return ur, res.FirstError()
}

// Delete writes through the primary and appends an oplog entry; see Insert
// for the ordering and acknowledgement contract.
func (rs *ReplicaSet) Delete(db, coll string, filter *bson.Doc, multi bool) (int, error) {
	res := rs.BulkWrite(db, coll, []storage.WriteOp{storage.DeleteWriteOp(filter, multi)}, storage.BulkOptions{Ordered: true})
	return res.Deleted, res.FirstError()
}

func cloneOrNil(d *bson.Doc) *bson.Doc {
	if d == nil {
		return nil
	}
	return d.Clone()
}

// appendOplogLocked stamps and retains one record under the caller's hold
// of rs.mu. With a WAL attached the record is appended there — which
// assigns its LSN — and the returned commit is waited on (waitOplog) after
// the lock is released so concurrent oplog fsyncs can group-commit; without
// one the in-memory counter assigns the sequence and the commit is nil.
func (rs *ReplicaSet) appendOplogLocked(rec *wal.Record) (*wal.Commit, error) {
	var commit *wal.Commit
	if rs.wal != nil {
		var err error
		commit, err = rs.wal.Append(rec)
		if err != nil {
			return nil, fmt.Errorf("replset: oplog append: %w", err)
		}
		rs.nextSeq = rec.LSN
	} else {
		rs.nextSeq++
		rec.LSN = rs.nextSeq
	}
	rs.oplog = append(rs.oplog, OplogEntry{At: rs.now(), Record: rec})
	primaryName := rs.members[rs.primary].Name()
	rs.applied[primaryName] = rec.LSN
	rs.lastApply[primaryName] = rs.now()
	rs.replCond.Broadcast() // wake appliers blocked on an empty tail
	return commit, nil
}

// waitOplog resolves a durable-oplog commit after rs.mu is released;
// journaled escalates the wait to a completed fsync ({j: true}).
func waitOplog(commit *wal.Commit, journaled bool) error {
	if commit == nil {
		return nil
	}
	return commit.Wait(journaled)
}

// Sync applies pending oplog entries to every secondary, bringing the set to
// a consistent state. It returns the number of entries applied across
// members.
func (rs *ReplicaSet) Sync() (int, error) {
	return rs.sync(false)
}

// ApplyAll applies pending oplog entries to every member, primary included.
// It is the catch-up path after LoadOplogFromWAL, where no member has the
// oplog's state yet.
func (rs *ReplicaSet) ApplyAll() (int, error) {
	return rs.sync(true)
}

func (rs *ReplicaSet) sync(includePrimary bool) (int, error) {
	rs.mu.Lock()
	if rs.replicating {
		// The background appliers own entry application; replaying here too
		// would race them into double applies. Syncing degenerates to waiting
		// for every live member to reach the oplog tip.
		rs.waitCaughtUpLocked()
		rs.mu.Unlock()
		return 0, nil
	}
	oplog := append([]OplogEntry(nil), rs.oplog...)
	members := append([]*mongod.Server(nil), rs.members...)
	primaryIdx := rs.primary
	epoch := rs.epoch
	applied := make(map[string]int64, len(rs.applied))
	for k, v := range rs.applied {
		applied[k] = v
	}
	stale := make(map[string]bool, len(members))
	for _, m := range members {
		stale[m.Name()] = rs.memberEpoch[m.Name()] != epoch
	}
	rs.mu.Unlock()

	total := 0
	for i, m := range members {
		if i == primaryIdx && !includePrimary {
			continue
		}
		name := m.Name()
		if stale[name] {
			// An election rolled back entries this member had applied; its
			// state is not a prefix of the surviving log, so rebuild it from
			// scratch by full replay.
			wipeMember(m)
			applied[name] = 0
			rs.mu.Lock()
			rs.applied[name] = 0
			rs.memberEpoch[name] = epoch
			rs.mu.Unlock()
		}
		last := applied[name]
		for _, e := range oplog {
			if e.Seq() <= last {
				continue
			}
			if err := applyEntry(m, e); err != nil {
				return total, fmt.Errorf("replset: applying op %d to %s: %w", e.Seq(), name, err)
			}
			last = e.Seq()
			total++
		}
		rs.mu.Lock()
		if last > rs.applied[name] {
			rs.applied[name] = last
			rs.lastApply[name] = rs.now()
		}
		rs.mu.Unlock()
	}
	return total, nil
}

// applyEntry replays one oplog record against a member. The record is cloned
// before applying because inserted documents are stored by reference and
// every member needs its own copy.
func applyEntry(m *mongod.Server, e OplogEntry) error {
	rec := e.Record.Clone()
	switch rec.Kind {
	case wal.KindBatch:
		res := m.Database(rec.DB).BulkWrite(rec.Coll, rec.Ops, storage.BulkOptions{Ordered: rec.Ordered})
		// Per-op failures are not apply errors: the record replays the exact
		// batch the primary ran, so an op that failed there (duplicate _id,
		// malformed spec) fails identically here — same outcome, converged
		// state. Only infrastructure failures abort the replay.
		return res.DurabilityErr
	case wal.KindClear:
		m.Database(rec.DB).Collection(rec.Coll).Drop()
		return nil
	case wal.KindDropCollection:
		m.Database(rec.DB).DropCollection(rec.Coll)
		return nil
	case wal.KindDropDatabase:
		m.DropDatabase(rec.DB)
		return nil
	case wal.KindEnsureIndex:
		_, err := m.Database(rec.DB).Collection(rec.Coll).EnsureIndexDoc(rec.Spec, rec.Unique)
		return err
	case wal.KindDropIndex:
		m.Database(rec.DB).Collection(rec.Coll).DropIndex(rec.Index)
		return nil
	default:
		return fmt.Errorf("unknown oplog record kind %v", rec.Kind)
	}
}

// ReplicationLag returns, per secondary, how many oplog entries it has not
// yet applied.
func (rs *ReplicaSet) ReplicationLag() map[string]int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]int64)
	tip := rs.tipLocked()
	for i, m := range rs.members {
		if i == rs.primary {
			continue
		}
		lag := tip - rs.applied[m.Name()]
		if lag < 0 {
			lag = 0 // rolled-back member awaiting resync
		}
		out[m.Name()] = lag
	}
	return out
}

// tipLocked returns the sequence number of the newest retained oplog entry,
// zero when the log is empty. Post-election it can trail nextSeq: a durable
// log never reuses LSNs, so rolled-back sequence numbers stay burned.
func (rs *ReplicaSet) tipLocked() int64 {
	if n := len(rs.oplog); n > 0 {
		return rs.oplog[n-1].Seq()
	}
	return 0
}

// Find reads from a member chosen by the read preference.
func (rs *ReplicaSet) Find(pref ReadPreference, db, coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	member := rs.pickMember(pref)
	return member.Database(db).Find(coll, filter, opts)
}

// FindCursor opens a streaming cursor on a member chosen by the read
// preference. The cursor pins the member's committed storage version at
// open, so a long drain observes one point-in-time state of that member
// even while replication keeps applying oplog entries underneath it — a
// secondary read never blocks behind the apply stream, and the apply stream
// never waits for slow readers.
func (rs *ReplicaSet) FindCursor(pref ReadPreference, db, coll string, filter *bson.Doc, opts storage.FindOptions) (*storage.Cursor, error) {
	member := rs.pickMember(pref)
	return member.Database(db).FindCursor(coll, filter, opts)
}

func (rs *ReplicaSet) pickMember(pref ReadPreference) *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	switch pref {
	case ReadPrimary:
		return rs.members[rs.primary]
	case ReadSecondary:
		for i, m := range rs.members {
			if i != rs.primary && !rs.down[m.Name()] {
				return m
			}
		}
		return rs.members[rs.primary]
	default:
		for range rs.members {
			rs.chainedRead++
			if m := rs.members[rs.chainedRead%len(rs.members)]; !rs.down[m.Name()] {
				return m
			}
		}
		return rs.members[rs.primary]
	}
}

// StepDown demotes the current primary and elects the live secondary with
// the most applied oplog entries, returning the new primary. With a single
// member, or when every secondary is down, the primary is retained.
//
// Election is where replication history can fork: entries the old primary
// acknowledged at w:1 may exist on no other member, and the new primary's
// log must win. StepDown therefore rolls the oplog back to the new
// primary's last applied sequence — discarded entries fail their pending
// quorum waits with a "rolled back" WriteConcernError, and any member whose
// state includes a discarded entry is marked for resync (wipe plus full
// replay) by bumping the rollback epoch. A write acknowledged at
// w:majority can never be rolled back: the elected member is the most
// caught-up live member, and a majority ack puts the entry on at least one
// member of every majority.
func (rs *ReplicaSet) StepDown() *mongod.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.members) == 1 {
		return rs.members[rs.primary]
	}
	best, bestApplied := -1, int64(-1)
	for i, m := range rs.members {
		if i == rs.primary || rs.down[m.Name()] {
			continue
		}
		if a := rs.applied[m.Name()]; a > bestApplied {
			best, bestApplied = i, a
		}
	}
	if best < 0 {
		return rs.members[rs.primary] // no live secondary to promote
	}
	rs.primary = best
	rs.rollbackLocked(bestApplied)
	rs.replCond.Broadcast()
	return rs.members[rs.primary]
}

// rollbackLocked truncates the oplog to the newly elected primary's applied
// watermark, fast-forwards the rollback epoch of members whose state is a
// prefix of the surviving log, and fails quorum waiters on discarded
// entries. Members left on the old epoch (they applied a discarded entry,
// or are mid-apply of one) are rebuilt by wipe-and-replay before they count
// toward any quorum again.
func (rs *ReplicaSet) rollbackLocked(tip int64) {
	cut := len(rs.oplog)
	for cut > 0 && rs.oplog[cut-1].Seq() > tip {
		cut--
	}
	if cut == len(rs.oplog) {
		return // nothing beyond the new primary: every member holds a prefix
	}
	rs.oplog = rs.oplog[:cut]
	if rs.wal == nil {
		rs.nextSeq = tip // volatile sequences are reusable; durable LSNs are not
	}
	rs.epoch++
	for _, m := range rs.members {
		name := m.Name()
		if rs.applied[name] <= tip && rs.applying[name] <= tip {
			rs.memberEpoch[name] = rs.epoch
		}
	}
	for w := range rs.waiters {
		if w.lsn > tip {
			w.err = &storage.WriteConcernError{W: w.wstr, Replicated: 0, Reason: "rolled back"}
			close(w.done)
			delete(rs.waiters, w)
		}
	}
}
