package cluster

import (
	"testing"

	"docstore/internal/bson"
	"docstore/internal/storage"
)

func TestShardCalculatorThesisExamples(t *testing.T) {
	// §2.1.3.2 example i: 1.5 TB data / 256 GB per shard ≈ 6 shards.
	n, err := ShardsForDiskStorage(1536<<30, 256<<30)
	if err != nil || n != 6 {
		t.Fatalf("disk sizing = %d, %v; want 6", n, err)
	}
	// Example ii: 200 GB working set / 64 GB RAM ≈ 4 shards (no reserve in
	// the thesis' example).
	n, err = ShardsForRAM(200<<30, 64<<30, 0)
	if err != nil || n != 4 {
		t.Fatalf("RAM sizing = %d, %v; want 4", n, err)
	}
	// Example iii: 12000 required IOPS / 5000 per shard ≈ 3 shards.
	n, err = ShardsForIOPS(12000, 5000)
	if err != nil || n != 3 {
		t.Fatalf("IOPS sizing = %d, %v; want 3", n, err)
	}
	// Example iv: N = G / (S * 0.7).
	n, err = ShardsForOPS(10000, 3000, 0)
	if err != nil || n != 5 {
		t.Fatalf("OPS sizing = %d, %v; want 5", n, err)
	}
	// The thesis' own cluster: 9.94 GB of data, 8 GB RAM shards with a 2 GB
	// reserve -> ceil(9.94/6) = 2 by RAM, which the thesis rounds up to 3
	// to leave room for indexes and intermediate collections.
	gb := float64(1 << 30)
	n, err = ShardsForRAM(int64(9.94*gb), 8<<30, 2<<30)
	if err != nil || n != 2 {
		t.Fatalf("thesis RAM sizing = %d, %v; want 2", n, err)
	}
}

func TestShardCalculatorEdgeCases(t *testing.T) {
	if _, err := ShardsForDiskStorage(1, 0); err == nil {
		t.Fatalf("zero shard disk should error")
	}
	if _, err := ShardsForRAM(1, 1<<30, 2<<30); err == nil {
		t.Fatalf("reserve exceeding RAM should error")
	}
	if _, err := ShardsForIOPS(1, 0); err == nil {
		t.Fatalf("zero shard IOPS should error")
	}
	if _, err := ShardsForOPS(1, 0, 0.7); err == nil {
		t.Fatalf("zero single-server OPS should error")
	}
	if n, _ := ShardsForDiskStorage(0, 1<<30); n != 1 {
		t.Fatalf("zero storage should still need one shard")
	}
	if n, _ := ShardsForRAM(0, 4<<30, 0); n != 1 {
		t.Fatalf("zero working set should still need one shard")
	}
	if n, _ := ShardsForIOPS(0, 100); n != 1 {
		t.Fatalf("zero IOPS should still need one shard")
	}
	if n, _ := ShardsForOPS(0, 100, 0.7); n != 1 {
		t.Fatalf("zero OPS should still need one shard")
	}
}

func TestRecommendShards(t *testing.T) {
	res, err := RecommendShards(SizingInputs{
		StorageBytes:    1536 << 30,
		ShardDiskBytes:  256 << 30,
		WorkingSetBytes: 200 << 30,
		ShardRAMBytes:   64 << 30,
		RequiredIOPS:    12000,
		ShardIOPS:       5000,
		RequiredOPS:     10000,
		SingleServerOPS: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByDisk != 6 || res.ByRAM != 4 || res.ByIOPS != 3 || res.ByOPS != 5 {
		t.Fatalf("per-factor results = %+v", res)
	}
	if res.Recommended != 6 {
		t.Fatalf("Recommended = %d, want the max (6)", res.Recommended)
	}
	// No inputs: one shard.
	res, err = RecommendShards(SizingInputs{})
	if err != nil || res.Recommended != 1 {
		t.Fatalf("empty inputs = %+v, %v", res, err)
	}
	// Errors propagate.
	if _, err := RecommendShards(SizingInputs{WorkingSetBytes: 1, ShardRAMBytes: 1, ReserveRAMBytes: 2}); err == nil {
		t.Fatalf("invalid RAM inputs should error")
	}
	if _, err := RecommendShards(SizingInputs{RequiredOPS: 1, SingleServerOPS: 1, ShardingOverhead: -1}); err == nil {
		t.Fatalf("invalid OPS inputs should error")
	}
}

func TestBuildClusterTopology(t *testing.T) {
	c := MustBuild(Config{Shards: 3, ShardRAMBytes: 8 << 30})
	if c.ShardCount() != 3 || len(c.Shards()) != 3 {
		t.Fatalf("shard count = %d", c.ShardCount())
	}
	if c.Router() == nil || c.ConfigServer() == nil {
		t.Fatalf("router or config server missing")
	}
	if c.Shards()[0].Name() != "Shard1" || c.Shards()[2].Name() != "Shard3" {
		t.Fatalf("shard names = %v, %v", c.Shards()[0].Name(), c.Shards()[2].Name())
	}
	if _, err := Build(Config{Shards: 0}); err == nil {
		t.Fatalf("zero shards should fail")
	}
	st := c.Status()
	if len(st.Shards) != 3 {
		t.Fatalf("status shards = %d", len(st.Shards))
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustBuild(Config{Shards: -1})
}

func TestClusterShardLoadQueryAndBalance(t *testing.T) {
	c := MustBuild(Config{Shards: 3, ChunkSizeBytes: 4096})
	if _, err := c.ShardCollection("Dataset", "store_sales", bson.D("ss_item_sk", 1)); err != nil {
		t.Fatal(err)
	}
	router := c.Router()
	for i := 0; i < 2000; i++ {
		if _, err := router.Insert("Dataset", "store_sales", bson.D(
			bson.IDKey, i, "ss_item_sk", i%500, "ss_quantity", i%7)); err != nil {
			t.Fatal(err)
		}
	}
	// Range sharding without balancing leaves everything on Shard1.
	before := c.Shards()[0].Database("Dataset").Collection("store_sales").Count()
	if before != 2000 {
		t.Fatalf("before balancing Shard1 holds %d docs", before)
	}
	moves, err := c.Balance("Dataset", "store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatalf("balancer moved no chunks")
	}
	// After balancing, data lives on multiple shards and nothing was lost.
	populated, total := 0, 0
	for _, s := range c.Shards() {
		n := s.Database("Dataset").Collection("store_sales").Count()
		total += n
		if n > 0 {
			populated++
		}
	}
	if populated < 2 || total != 2000 {
		t.Fatalf("after balancing: %d shards populated, %d docs", populated, total)
	}
	// Queries through the router still see every document, and targeted
	// queries still find their rows after migration.
	n, err := router.Count("Dataset", "store_sales", nil)
	if err != nil || n != 2000 {
		t.Fatalf("router count after balancing = %d, %v", n, err)
	}
	docs, err := router.Find("Dataset", "store_sales", bson.D("ss_item_sk", 123), storage.FindOptions{})
	if err != nil || len(docs) != 4 {
		t.Fatalf("targeted find after balancing = %d docs, %v", len(docs), err)
	}
	// Balancing an unsharded collection fails.
	if _, err := c.Balance("Dataset", "nope"); err == nil {
		t.Fatalf("balancing unsharded collection should fail")
	}
	st := c.Status()
	if len(st.ShardedColls) != 1 || st.TotalDataSize <= 0 {
		t.Fatalf("cluster status = %+v", st)
	}
}
