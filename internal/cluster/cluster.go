package cluster

import (
	"fmt"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/sharding"
)

// Config describes a sharded deployment to build.
type Config struct {
	// Shards is the number of shard servers (the thesis uses 3).
	Shards int
	// ShardRAMBytes / ShardDiskBytes size each shard server (informational,
	// feeds working-set pressure reporting).
	ShardRAMBytes  int64
	ShardDiskBytes int64
	// NetworkLatency simulates the per-call network cost between the query
	// router and the shards.
	NetworkLatency time.Duration
	// ParallelScatter makes the router fan out shard calls concurrently.
	ParallelScatter bool
	// ChunkSizeBytes overrides the 64 MB default chunk size.
	ChunkSizeBytes int
	// NamePrefix names the shard servers ("Shard1", "Shard2", ...).
	NamePrefix string
}

// Cluster is a fully assembled sharded deployment: shard servers, a config
// server and a query router, mirroring Figure 3.1.
type Cluster struct {
	cfg    Config
	shards []*mongod.Server
	config *sharding.ConfigServer
	router *mongos.Router
}

// Build creates the deployment.
func Build(cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: at least one shard is required")
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "Shard"
	}
	c := &Cluster{cfg: cfg, config: sharding.NewConfigServer()}
	c.router = mongos.NewRouter(c.config, mongos.Options{
		NetworkLatency: cfg.NetworkLatency,
		Parallel:       cfg.ParallelScatter,
	})
	for i := 0; i < cfg.Shards; i++ {
		s := mongod.NewServer(mongod.Options{
			Name:      fmt.Sprintf("%s%d", cfg.NamePrefix, i+1),
			RAMBytes:  cfg.ShardRAMBytes,
			DiskBytes: cfg.ShardDiskBytes,
		})
		c.shards = append(c.shards, s)
		c.router.AddShard(s.Name(), s)
	}
	return c, nil
}

// MustBuild is Build but panics on error.
func MustBuild(cfg Config) *Cluster {
	c, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Router returns the cluster's query router; all client operations go
// through it.
func (c *Cluster) Router() *mongos.Router { return c.router }

// ConfigServer returns the cluster's config server.
func (c *Cluster) ConfigServer() *sharding.ConfigServer { return c.config }

// Shards returns the shard servers.
func (c *Cluster) Shards() []*mongod.Server { return append([]*mongod.Server(nil), c.shards...) }

// ShardCount returns the number of shards.
func (c *Cluster) ShardCount() int { return len(c.shards) }

// ShardCollection shards db.coll on the given key and returns its metadata.
func (c *Cluster) ShardCollection(db, coll string, keySpec *bson.Doc) (*sharding.CollectionMetadata, error) {
	return c.router.EnableSharding(db, coll, keySpec, c.cfg.ChunkSizeBytes)
}

// Balance runs the balancer for one namespace, moving the affected documents
// between shard servers and committing the ownership changes. It returns the
// number of chunk migrations performed.
func (c *Cluster) Balance(db, coll string) (int, error) {
	ns := db + "." + coll
	meta := c.config.Metadata(ns)
	if meta == nil {
		return 0, fmt.Errorf("cluster: %s is not sharded", ns)
	}
	balancer := sharding.NewBalancer(c.config)
	migrations := balancer.Plan(ns)
	for _, mig := range migrations {
		if err := c.migrateChunk(db, coll, meta, mig); err != nil {
			return 0, err
		}
		if !balancer.ApplyMigration(mig) {
			return 0, fmt.Errorf("cluster: migration of chunk %d could not be committed", mig.ChunkID)
		}
	}
	return len(migrations), nil
}

// migrateChunk moves the documents of one chunk between shard servers.
func (c *Cluster) migrateChunk(db, coll string, meta *sharding.CollectionMetadata, mig sharding.Migration) error {
	var chunk *sharding.Chunk
	for _, ch := range meta.Chunks() {
		if ch.ID == mig.ChunkID {
			chunk = ch
			break
		}
	}
	if chunk == nil {
		return fmt.Errorf("cluster: chunk %d not found", mig.ChunkID)
	}
	from := c.router.Shard(mig.From)
	to := c.router.Shard(mig.To)
	if from == nil || to == nil {
		return fmt.Errorf("cluster: migration endpoints missing (%s -> %s)", mig.From, mig.To)
	}
	// Select the documents whose routing value falls inside the chunk.
	var moving []*bson.Doc
	from.Database(db).Collection(coll).Scan(func(d *bson.Doc) bool {
		if chunk.Contains(meta.Key.ValueOf(d)) {
			moving = append(moving, d)
		}
		return true
	})
	for _, d := range moving {
		if _, err := to.Database(db).Insert(coll, d.Clone()); err != nil {
			return err
		}
		if _, err := from.Database(db).Delete(coll, bson.D(bson.IDKey, d.ID()), false); err != nil {
			return err
		}
	}
	return nil
}

// Status summarizes the cluster.
type Status struct {
	Shards        []mongod.ServerStatus
	ShardedColls  []string
	Routing       mongos.RoutingStats
	TotalDataSize int64
}

// Status gathers the current cluster status.
func (c *Cluster) Status() Status {
	st := Status{
		ShardedColls: c.config.ShardedNamespaces(),
		Routing:      c.router.Stats(),
	}
	for _, s := range c.shards {
		ss := s.Status()
		st.Shards = append(st.Shards, ss)
		st.TotalDataSize += ss.DataSizeBytes
	}
	return st
}
