// Package cluster assembles sharded deployments: it implements the
// shard-count sizing formulas of §2.1.3.2, builds clusters of shard servers
// plus a config server and query router, and reproduces the thesis'
// deployment topologies (Figure 3.1: 3 shards, 1 config server, 1 combined
// application server / query router).
package cluster

import (
	"fmt"
	"math"
)

// SizingInputs carries the capacity figures used to size a cluster.
type SizingInputs struct {
	// Disk sizing.
	StorageBytes   int64 // total data to store
	ShardDiskBytes int64 // disk capacity per shard
	// RAM sizing.
	WorkingSetBytes int64 // indexes + frequently accessed documents
	ShardRAMBytes   int64 // RAM per shard
	// Reserve is RAM set aside for the OS and other processes on each shard
	// (the thesis budgets 2 GB).
	ReserveRAMBytes int64
	// Disk throughput sizing.
	RequiredIOPS int64
	ShardIOPS    int64
	// Operations-per-second sizing.
	RequiredOPS      float64
	SingleServerOPS  float64
	ShardingOverhead float64 // the 0.7 factor of §2.1.3.2; 0 uses the default
}

// DefaultShardingOverhead is the sharding overhead factor used by the OPS
// formula when none is supplied.
const DefaultShardingOverhead = 0.7

// ShardsForDiskStorage returns the shard count needed so that the summed disk
// capacity covers the stored data (§2.1.3.2 example i).
func ShardsForDiskStorage(storageBytes, shardDiskBytes int64) (int, error) {
	if shardDiskBytes <= 0 {
		return 0, fmt.Errorf("cluster: shard disk capacity must be positive")
	}
	if storageBytes <= 0 {
		return 1, nil
	}
	return int(math.Ceil(float64(storageBytes) / float64(shardDiskBytes))), nil
}

// ShardsForRAM returns the shard count needed so that the summed usable RAM
// covers the working set (§2.1.3.2 example ii). reserve is subtracted from
// each shard's RAM before dividing.
func ShardsForRAM(workingSetBytes, shardRAMBytes, reserveBytes int64) (int, error) {
	usable := shardRAMBytes - reserveBytes
	if usable <= 0 {
		return 0, fmt.Errorf("cluster: shard RAM %d does not exceed the reserve %d", shardRAMBytes, reserveBytes)
	}
	if workingSetBytes <= 0 {
		return 1, nil
	}
	return int(math.Ceil(float64(workingSetBytes) / float64(usable))), nil
}

// ShardsForIOPS returns the shard count needed so the summed IOPS meets the
// requirement (§2.1.3.2 example iii).
func ShardsForIOPS(requiredIOPS, shardIOPS int64) (int, error) {
	if shardIOPS <= 0 {
		return 0, fmt.Errorf("cluster: shard IOPS must be positive")
	}
	if requiredIOPS <= 0 {
		return 1, nil
	}
	return int(math.Ceil(float64(requiredIOPS) / float64(shardIOPS))), nil
}

// ShardsForOPS returns the shard count needed to reach the required
// operations per second given a single-server rate and the sharding overhead
// factor: G = N * S * overhead  =>  N = G / (S * overhead) (§2.1.3.2
// example iv).
func ShardsForOPS(requiredOPS, singleServerOPS, overhead float64) (int, error) {
	if overhead == 0 {
		overhead = DefaultShardingOverhead
	}
	if singleServerOPS <= 0 || overhead <= 0 {
		return 0, fmt.Errorf("cluster: single-server OPS and overhead must be positive")
	}
	if requiredOPS <= 0 {
		return 1, nil
	}
	return int(math.Ceil(requiredOPS / (singleServerOPS * overhead))), nil
}

// SizingResult reports per-factor shard counts and the recommendation.
type SizingResult struct {
	ByDisk, ByRAM, ByIOPS, ByOPS int
	Recommended                  int
}

// RecommendShards evaluates every sizing factor present in the inputs and
// recommends the maximum, which is the count that satisfies all constraints.
// The thesis sizes its cluster on disk and RAM and then rounds up to 3 shards
// to leave room for indexes and intermediate collections.
func RecommendShards(in SizingInputs) (SizingResult, error) {
	res := SizingResult{Recommended: 1}
	consider := func(n int) {
		if n > res.Recommended {
			res.Recommended = n
		}
	}
	if in.ShardDiskBytes > 0 {
		n, err := ShardsForDiskStorage(in.StorageBytes, in.ShardDiskBytes)
		if err != nil {
			return res, err
		}
		res.ByDisk = n
		consider(n)
	}
	if in.ShardRAMBytes > 0 {
		n, err := ShardsForRAM(in.WorkingSetBytes, in.ShardRAMBytes, in.ReserveRAMBytes)
		if err != nil {
			return res, err
		}
		res.ByRAM = n
		consider(n)
	}
	if in.ShardIOPS > 0 {
		n, err := ShardsForIOPS(in.RequiredIOPS, in.ShardIOPS)
		if err != nil {
			return res, err
		}
		res.ByIOPS = n
		consider(n)
	}
	if in.SingleServerOPS > 0 {
		n, err := ShardsForOPS(in.RequiredOPS, in.SingleServerOPS, in.ShardingOverhead)
		if err != nil {
			return res, err
		}
		res.ByOPS = n
		consider(n)
	}
	return res, nil
}
