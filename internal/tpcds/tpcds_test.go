package tpcds

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestSchemaCatalog(t *testing.T) {
	s := NewSchema()
	if got := len(s.TableNames()); got != 24 {
		t.Fatalf("schema has %d tables, want 24", got)
	}
	if got := len(s.FactTables()); got != 7 {
		t.Fatalf("schema has %d fact tables, want 7", got)
	}
	if got := len(s.DimensionTables()); got != 17 {
		t.Fatalf("schema has %d dimension tables, want 17", got)
	}
	ss := s.MustTable("store_sales")
	if !ss.Fact || len(ss.Columns) != 23 {
		t.Fatalf("store_sales: fact=%v cols=%d", ss.Fact, len(ss.Columns))
	}
	if ss.ColumnIndex("ss_sold_date_sk") != 0 || ss.ColumnIndex("nope") != -1 {
		t.Fatalf("ColumnIndex broken")
	}
	if len(ss.ColumnNames()) != 23 {
		t.Fatalf("ColumnNames length wrong")
	}
	fk := ss.ForeignKeyFor("ss_sold_date_sk")
	if fk == nil || fk.RefTable != "date_dim" || fk.RefColumn != "d_date_sk" {
		t.Fatalf("FK = %+v", fk)
	}
	if ss.ForeignKeyFor("ss_quantity") != nil {
		t.Fatalf("measure column should have no FK")
	}
	// Every declared foreign key references an existing table and column.
	for _, name := range s.TableNames() {
		tab := s.Table(name)
		for _, fk := range tab.ForeignKeys {
			ref := s.Table(fk.RefTable)
			if ref == nil {
				t.Errorf("%s.%s references unknown table %s", name, fk.Column, fk.RefTable)
				continue
			}
			if ref.ColumnIndex(fk.RefColumn) != 0 {
				t.Errorf("%s.%s references %s.%s which is not the leading PK column", name, fk.Column, fk.RefTable, fk.RefColumn)
			}
			if tab.ColumnIndex(fk.Column) < 0 {
				t.Errorf("%s declares FK on missing column %s", name, fk.Column)
			}
		}
	}
	if s.Table("nope") != nil {
		t.Fatalf("unknown table should be nil")
	}
}

func TestSchemaMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewSchema().MustTable("nope")
}

func TestScaleRowCountsFollowTable36(t *testing.T) {
	small, large := ScaleSmall, ScaleLarge
	// Paper row counts are Table 3.6 verbatim.
	if small.PaperRowCount("store_sales") != 2880404 || large.PaperRowCount("store_sales") != 14400052 {
		t.Fatalf("paper store_sales counts wrong")
	}
	if small.PaperRowCount("customer_demographics") != large.PaperRowCount("customer_demographics") {
		t.Fatalf("customer_demographics should be identical at both scales")
	}
	if small.PaperRowCount("unknown_table") != 0 {
		t.Fatalf("unknown table should have zero rows")
	}
	// Scaled counts preserve the 1GB:5GB ratios for scaled tables.
	ssRatio := float64(large.RowCount("store_sales")) / float64(small.RowCount("store_sales"))
	paperRatio := float64(14400052) / float64(2880404)
	if ssRatio < paperRatio*0.95 || ssRatio > paperRatio*1.05 {
		t.Fatalf("store_sales ratio %.3f deviates from paper %.3f", ssRatio, paperRatio)
	}
	// Tables with identical paper counts stay identical across scales
	// (observation (i) of §4.3 relies on this).
	for _, table := range []string{"customer_demographics", "date_dim", "household_demographics", "income_band", "ship_mode", "time_dim", "catalog_page"} {
		if small.RowCount(table) != large.RowCount(table) {
			t.Errorf("%s should have equal counts at both scales: %d vs %d", table, small.RowCount(table), large.RowCount(table))
		}
	}
	// Divisor 1 reproduces the paper's absolute counts.
	full := ScaleSmall.WithDivisor(1)
	if full.RowCount("store_sales") != 2880404 {
		t.Fatalf("divisor 1 should reproduce the paper count, got %d", full.RowCount("store_sales"))
	}
	if full.RowCount("date_dim") != 73049 {
		t.Fatalf("divisor 1 date_dim = %d", full.RowCount("date_dim"))
	}
	// Reduced-scale calendar covers the query window.
	if small.RowCount("date_dim") != calendarDays {
		t.Fatalf("reduced date_dim = %d", small.RowCount("date_dim"))
	}
	// WithDivisor guards against nonsense.
	if ScaleSmall.WithDivisor(0).Divisor != 1 {
		t.Fatalf("WithDivisor(0) should clamp to 1")
	}
	if ScaleSmall.String() == "" || len(small.TableRowCounts(NewSchema())) != 24 {
		t.Fatalf("String/TableRowCounts broken")
	}
}

func TestGeneratorRowShapesAndDeterminism(t *testing.T) {
	g := NewGenerator(ScaleSmall.WithDivisor(2000), 42)
	schema := g.Schema()
	for _, table := range schema.TableNames() {
		tab := schema.Table(table)
		n := g.RowCount(table)
		if n <= 0 {
			t.Fatalf("%s has no rows", table)
		}
		seen := 0
		err := g.EachRow(table, func(i int, row []string) error {
			seen++
			if len(row) != len(tab.Columns) {
				t.Fatalf("%s row %d has %d values, want %d", table, i, len(row), len(tab.Columns))
			}
			// Typed columns must parse when non-null.
			for c, col := range tab.Columns {
				v := row[c]
				if v == "" {
					continue
				}
				switch col.Type {
				case ColInt:
					if _, err := strconv.Atoi(v); err != nil {
						t.Fatalf("%s.%s row %d: %q is not an int", table, col.Name, i, v)
					}
				case ColFloat:
					if _, err := strconv.ParseFloat(v, 64); err != nil {
						t.Fatalf("%s.%s row %d: %q is not a float", table, col.Name, i, v)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("EachRow(%s): %v", table, err)
		}
		if seen != n {
			t.Fatalf("%s generated %d rows, want %d", table, seen, n)
		}
	}
	// Determinism: the same (scale, seed) yields identical rows.
	g2 := NewGenerator(ScaleSmall.WithDivisor(2000), 42)
	for _, table := range []string{"store_sales", "item", "customer"} {
		for i := 0; i < 20; i++ {
			a, _ := g.Row(table, i)
			b, _ := g2.Row(table, i)
			if strings.Join(a, "|") != strings.Join(b, "|") {
				t.Fatalf("%s row %d not deterministic", table, i)
			}
		}
	}
	// A different seed yields different fact rows.
	g3 := NewGenerator(ScaleSmall.WithDivisor(2000), 43)
	a, _ := g.Row("store_sales", 0)
	b, _ := g3.Row("store_sales", 0)
	if strings.Join(a, "|") == strings.Join(b, "|") {
		t.Fatalf("different seeds produced identical rows")
	}
	// Errors for unknown tables and out-of-range rows.
	if _, err := g.Row("nope", 0); err == nil {
		t.Fatalf("unknown table should error")
	}
	if _, err := g.Row("item", 1<<30); err == nil {
		t.Fatalf("out-of-range row should error")
	}
	if err := g.EachRow("nope", func(int, []string) error { return nil }); err == nil {
		t.Fatalf("EachRow on unknown table should error")
	}
}

func TestGeneratorReferentialIntegrity(t *testing.T) {
	g := NewGenerator(ScaleSmall.WithDivisor(1000), 7)
	schema := g.Schema()
	// Surrogate keys of facts must stay within the referenced dimension's
	// cardinality so every join in the queries resolves.
	checkFK := func(table string) {
		tab := schema.Table(table)
		err := g.EachRow(table, func(i int, row []string) error {
			for _, fk := range tab.ForeignKeys {
				idx := tab.ColumnIndex(fk.Column)
				v := row[idx]
				if v == "" {
					continue
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					t.Fatalf("%s.%s row %d: %v", table, fk.Column, i, err)
				}
				refCount := g.RowCount(fk.RefTable)
				// Date keys live in surrogate space offset by DateSkBase.
				if fk.RefTable == "date_dim" {
					if n < DateSkBase || n >= DateSkBase+refCount {
						t.Fatalf("%s.%s row %d: date key %d outside [%d, %d)", table, fk.Column, i, n, DateSkBase, DateSkBase+refCount)
					}
					continue
				}
				if fk.RefTable == "time_dim" {
					continue // time keys are 0-based and not queried
				}
				if n < 1 || n > refCount {
					t.Fatalf("%s.%s row %d: key %d outside [1, %d]", table, fk.Column, i, n, refCount)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, table := range []string{"store_sales", "store_returns", "inventory", "customer"} {
		checkFK(table)
	}
}

func TestStoreReturnsJoinBackToSales(t *testing.T) {
	g := NewGenerator(ScaleSmall.WithDivisor(1000), 7)
	ssTab := g.Schema().Table("store_sales")
	srTab := g.Schema().Table("store_returns")
	// Build the (ticket, item, customer) key set of sales.
	type key struct{ ticket, item, customer string }
	sales := make(map[key]string) // -> sold date sk
	_ = g.EachRow("store_sales", func(_ int, row []string) error {
		sales[key{
			row[ssTab.ColumnIndex("ss_ticket_number")],
			row[ssTab.ColumnIndex("ss_item_sk")],
			row[ssTab.ColumnIndex("ss_customer_sk")],
		}] = row[ssTab.ColumnIndex("ss_sold_date_sk")]
		return nil
	})
	matched, within := 0, 0
	total := 0
	_ = g.EachRow("store_returns", func(_ int, row []string) error {
		total++
		k := key{
			row[srTab.ColumnIndex("sr_ticket_number")],
			row[srTab.ColumnIndex("sr_item_sk")],
			row[srTab.ColumnIndex("sr_customer_sk")],
		}
		soldSk, ok := sales[k]
		if !ok {
			return nil
		}
		matched++
		sold, _ := strconv.Atoi(soldSk)
		returned, _ := strconv.Atoi(row[srTab.ColumnIndex("sr_returned_date_sk")])
		if diff := returned - sold; diff >= 1 && diff <= 150 {
			within++
		}
		return nil
	})
	if total == 0 {
		t.Fatalf("no returns generated")
	}
	if matched < total*9/10 {
		t.Fatalf("only %d/%d returns join back to a sale; Query 50 needs this join", matched, total)
	}
	if within < matched*9/10 {
		t.Fatalf("only %d/%d matched returns have a 1-150 day lag", within, matched)
	}
}

func TestQueryPredicateValueDomains(t *testing.T) {
	g := NewGenerator(ScaleSmall.WithDivisor(1000), 7)
	schema := g.Schema()
	// Query 7 relies on the M / M / 4 yr Degree demographic combination.
	cd := schema.Table("customer_demographics")
	found := false
	_ = g.EachRow("customer_demographics", func(_ int, row []string) error {
		if row[cd.ColumnIndex("cd_gender")] == "M" &&
			row[cd.ColumnIndex("cd_marital_status")] == "M" &&
			row[cd.ColumnIndex("cd_education_status")] == "4 yr Degree" {
			found = true
		}
		return nil
	})
	if !found {
		t.Fatalf("no M/M/4 yr Degree demographics generated; Query 7 would be empty")
	}
	// Query 46 relies on stores in Midway / Fairview and weekend dates.
	st := schema.Table("store")
	cityHit := false
	_ = g.EachRow("store", func(_ int, row []string) error {
		c := row[st.ColumnIndex("s_city")]
		if c == "Midway" || c == "Fairview" {
			cityHit = true
		}
		return nil
	})
	if !cityHit {
		t.Fatalf("no stores in Midway/Fairview; Query 46 would be empty")
	}
	dd := schema.Table("date_dim")
	years := map[string]bool{}
	weekend := false
	oct1998 := false
	may2002 := false
	_ = g.EachRow("date_dim", func(_ int, row []string) error {
		years[row[dd.ColumnIndex("d_year")]] = true
		if row[dd.ColumnIndex("d_dow")] == "6" || row[dd.ColumnIndex("d_dow")] == "0" {
			weekend = true
		}
		if row[dd.ColumnIndex("d_year")] == "1998" && row[dd.ColumnIndex("d_moy")] == "10" {
			oct1998 = true
		}
		if row[dd.ColumnIndex("d_date")] == "2002-05-29" {
			may2002 = true
		}
		return nil
	})
	for _, y := range []string{"1998", "1999", "2000", "2001", "2002"} {
		if !years[y] {
			t.Fatalf("calendar missing year %s", y)
		}
	}
	if !weekend || !oct1998 || !may2002 {
		t.Fatalf("calendar missing query-relevant dates (weekend=%v oct1998=%v may2002=%v)", weekend, oct1998, may2002)
	}
	// Query 21 relies on items priced between 0.99 and 1.49.
	it := schema.Table("item")
	priced := 0
	_ = g.EachRow("item", func(_ int, row []string) error {
		p, _ := strconv.ParseFloat(row[it.ColumnIndex("i_current_price")], 64)
		if p >= 0.99 && p <= 1.49 {
			priced++
		}
		return nil
	})
	if priced == 0 {
		t.Fatalf("no items in the 0.99-1.49 price band; Query 21 would be empty")
	}
	// Query 46 relies on hd_dep_count=2 / hd_vehicle_count=3 households.
	hd := schema.Table("household_demographics")
	hdHit := false
	_ = g.EachRow("household_demographics", func(_ int, row []string) error {
		if row[hd.ColumnIndex("hd_dep_count")] == "2" || row[hd.ColumnIndex("hd_vehicle_count")] == "3" {
			hdHit = true
		}
		return nil
	})
	if !hdHit {
		t.Fatalf("no qualifying household demographics; Query 46 would be empty")
	}
}

func TestCalendarHelpers(t *testing.T) {
	if DateForOffset(0).Format("2006-01-02") != calendarStartISO {
		t.Fatalf("calendar start mismatch")
	}
	if DateSkForOffset(0) != DateSkBase {
		t.Fatalf("date sk base mismatch")
	}
	off, err := OffsetForDate("2002-05-29")
	if err != nil {
		t.Fatal(err)
	}
	if DateForOffset(off).Format("2006-01-02") != "2002-05-29" {
		t.Fatalf("offset round trip failed")
	}
	if _, err := OffsetForDate("not-a-date"); err == nil {
		t.Fatalf("bad date should error")
	}
}

func TestDatRoundTrip(t *testing.T) {
	g := NewGenerator(ScaleSmall.WithDivisor(2000), 3)
	var buf bytes.Buffer
	if err := g.WriteDat("customer_address", &buf); err != nil {
		t.Fatal(err)
	}
	content := buf.String()
	if !strings.Contains(content, "|") || !strings.HasSuffix(strings.TrimSpace(strings.Split(content, "\n")[0]), "|") {
		t.Fatalf("dat format should delimit every column with a trailing pipe")
	}
	var rows [][]string
	if err := ReadDat(&buf, func(row []string) error {
		rows = append(rows, append([]string(nil), row...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := g.RowCount("customer_address")
	if len(rows) != want {
		t.Fatalf("read %d rows, want %d", len(rows), want)
	}
	tab := g.Schema().Table("customer_address")
	for _, r := range rows {
		if len(r) != len(tab.Columns) {
			t.Fatalf("row has %d columns, want %d", len(r), len(tab.Columns))
		}
	}
	// Reader errors propagate.
	if err := ReadDat(strings.NewReader("a|b|\n"), func([]string) error {
		return strings.NewReader("").UnreadByte()
	}); err == nil {
		t.Fatalf("callback errors should propagate")
	}
	// Empty lines are skipped, non-trailing-delimiter rows are tolerated.
	var got [][]string
	err := ReadDat(strings.NewReader("a|b\n\nc|d|\n"), func(row []string) error {
		got = append(got, row)
		return nil
	})
	if err != nil || len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("tolerant parse = %v, %v", got, err)
	}
}

func TestGenerateDirAndTableDat(t *testing.T) {
	g := NewGenerator(ScaleSmall.WithDivisor(5000), 3)
	dir := t.TempDir()
	files, err := g.GenerateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 24 {
		t.Fatalf("generated %d files, want 24", len(files))
	}
	if files["store_sales"] == "" || !strings.HasSuffix(files["store_sales"], "store_sales.dat") {
		t.Fatalf("file map = %v", files["store_sales"])
	}
	data, err := g.TableDat("warehouse")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != g.RowCount("warehouse") {
		t.Fatalf("TableDat lines = %d, want %d", lines, g.RowCount("warehouse"))
	}
	if DatFileName("item") != "item.dat" {
		t.Fatalf("DatFileName wrong")
	}
}
