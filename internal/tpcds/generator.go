package tpcds

import (
	"fmt"
	"strconv"
	"time"
)

// Calendar constants: the generated calendar starts at 1998-01-01, whose
// TPC-DS surrogate key is 2450815, and the fact tables draw their sale dates
// from a five-year window so every query-year predicate (1998–2002) selects a
// non-trivial slice.
const (
	DateSkBase       = 2450815
	calendarStartISO = "1998-01-01"
	salesWindowDays  = 1826 // 1998-01-01 .. 2002-12-31
)

var calendarStart = time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC)

// DateForOffset returns the calendar date at a day offset from the window
// start.
func DateForOffset(offset int) time.Time { return calendarStart.AddDate(0, 0, offset) }

// DateSkForOffset returns the date surrogate key at a day offset.
func DateSkForOffset(offset int) int { return DateSkBase + offset }

// OffsetForDate returns the day offset of an ISO date within the calendar.
func OffsetForDate(iso string) (int, error) {
	t, err := time.Parse("2006-01-02", iso)
	if err != nil {
		return 0, fmt.Errorf("tpcds: bad date %q: %w", iso, err)
	}
	return int(t.Sub(calendarStart).Hours() / 24), nil
}

// Generator produces the synthetic dataset for one scale. Row generation is
// deterministic in (seed, table, row index): generating a table twice, or on
// two different machines, yields identical rows. Fact rows are pure functions
// of their index so correlated tables (store_returns referencing store_sales)
// can be generated independently without materializing their parents.
type Generator struct {
	schema *Schema
	scale  Scale
	seed   uint64
}

// NewGenerator creates a generator for a scale.
func NewGenerator(scale Scale, seed int64) *Generator {
	return &Generator{schema: NewSchema(), scale: scale, seed: uint64(seed)}
}

// Schema returns the table catalog.
func (g *Generator) Schema() *Schema { return g.schema }

// Scale returns the generator's scale.
func (g *Generator) Scale() Scale { return g.scale }

// RowCount returns the number of rows generated for a table.
func (g *Generator) RowCount(table string) int { return g.scale.RowCount(table) }

// splitmix64 is the per-row deterministic hash driving all value choices.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// rnd derives the k-th random draw for row i of a table.
func (g *Generator) rnd(table string, i, k int) uint64 {
	h := g.seed
	for _, c := range table {
		h = splitmix64(h ^ uint64(c))
	}
	return splitmix64(h ^ splitmix64(uint64(i)*2654435761+uint64(k)*40503))
}

func (g *Generator) rndInt(table string, i, k, n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.rnd(table, i, k) % uint64(n))
}

func (g *Generator) rndFloat(table string, i, k int, lo, hi float64) float64 {
	f := float64(g.rnd(table, i, k)%1000000) / 1000000.0
	return lo + f*(hi-lo)
}

// EachRow invokes fn for every row of the table in order.
func (g *Generator) EachRow(table string, fn func(i int, row []string) error) error {
	t := g.schema.Table(table)
	if t == nil {
		return fmt.Errorf("tpcds: unknown table %q", table)
	}
	n := g.RowCount(table)
	for i := 0; i < n; i++ {
		row, err := g.Row(table, i)
		if err != nil {
			return err
		}
		if err := fn(i, row); err != nil {
			return err
		}
	}
	return nil
}

// Row generates row i of a table as column string values in schema order.
// Null column values are rendered as empty strings, matching the dsdgen
// `.dat` convention.
func (g *Generator) Row(table string, i int) ([]string, error) {
	t := g.schema.Table(table)
	if t == nil {
		return nil, fmt.Errorf("tpcds: unknown table %q", table)
	}
	n := g.RowCount(table)
	if i < 0 || i >= n {
		return nil, fmt.Errorf("tpcds: row %d out of range for %s (%d rows)", i, table, n)
	}
	switch table {
	case "date_dim":
		return g.dateDimRow(i), nil
	case "time_dim":
		return g.timeDimRow(i), nil
	case "item":
		return g.itemRow(i), nil
	case "customer":
		return g.customerRow(i), nil
	case "customer_address":
		return g.customerAddressRow(i), nil
	case "customer_demographics":
		return g.customerDemographicsRow(i), nil
	case "household_demographics":
		return g.householdDemographicsRow(i), nil
	case "income_band":
		return g.incomeBandRow(i), nil
	case "promotion":
		return g.promotionRow(i), nil
	case "store":
		return g.storeRow(i), nil
	case "warehouse":
		return g.warehouseRow(i), nil
	case "store_sales":
		return g.storeSalesRow(i), nil
	case "store_returns":
		return g.storeReturnsRow(i), nil
	case "inventory":
		return g.inventoryRow(i), nil
	default:
		return g.genericRow(t, i), nil
	}
}

// ---------------------------------------------------------------------------
// Dimension tables

var (
	genders        = []string{"M", "F"}
	maritalStatus  = []string{"M", "S", "D", "W", "U"}
	educations     = []string{"Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced Degree", "Unknown"}
	creditRatings  = []string{"Low Risk", "Good", "High Risk", "Unknown"}
	buyPotentials  = []string{"0-500", "501-1000", "1001-5000", "5001-10000", ">10000", "Unknown"}
	cities         = []string{"Midway", "Fairview", "Oak Grove", "Pleasant Hill", "Centerville", "Lakeview", "Riverside", "Union", "Salem", "Greenville"}
	states         = []string{"OH", "CA", "TX", "GA", "KY", "TN", "IN", "MI"}
	streetNames    = []string{"Jackson", "Main", "Oak", "Maple", "Washington", "Park", "Elm", "College"}
	streetTypes    = []string{"Parkway", "Street", "Avenue", "Boulevard", "Lane", "Court"}
	firstNames     = []string{"Earl", "James", "Mary", "Linda", "Robert", "Patricia", "Michael", "Barbara", "William", "Susan"}
	lastNames      = []string{"Garrison", "Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis", "Wilson", "Moore"}
	categories     = []string{"Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women", "Children"}
	dayNames       = []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	yesNo          = []string{"Y", "N"}
	channelNames   = []string{"mail", "email", "catalog", "tv", "radio", "press", "event", "demo"}
	warehouseNames = []string{"Conventional childr", "Important issues liv", "Doors canno", "Bad cards must make", "Rooms cook ", "Sure opportunities m", "Eyes say close"}
)

func itoa(v int) string                       { return strconv.Itoa(v) }
func ftoa(v float64) string                   { return strconv.FormatFloat(v, 'f', 2, 64) }
func businessKey(prefix string, i int) string { return fmt.Sprintf("%s%016d", prefix, i+1) }

func (g *Generator) dateDimRow(i int) []string {
	d := DateForOffset(i)
	dow := int(d.Weekday())
	weekend := "N"
	if dow == 0 || dow == 6 {
		weekend = "Y"
	}
	quarter := (int(d.Month())-1)/3 + 1
	return []string{
		itoa(DateSkForOffset(i)),                  // d_date_sk
		businessKey("AAAAAAAA", i),                // d_date_id
		d.Format("2006-01-02"),                    // d_date
		itoa((d.Year()-1900)*12 + int(d.Month())), // d_month_seq
		itoa(i / 7),                               // d_week_seq
		itoa((d.Year()-1900)*4 + quarter),         // d_quarter_seq
		itoa(d.Year()),                            // d_year
		itoa(dow),                                 // d_dow
		itoa(int(d.Month())),                      // d_moy
		itoa(d.Day()),                             // d_dom
		itoa(quarter),                             // d_qoy
		itoa(d.Year()),                            // d_fy_year
		itoa((d.Year()-1900)*4 + quarter),         // d_fy_quarter_seq
		itoa(i / 7),                               // d_fy_week_seq
		dayNames[dow],                             // d_day_name
		fmt.Sprintf("%dQ%d", d.Year(), quarter),   // d_quarter_name
		"N",                                       // d_holiday
		weekend,                                   // d_weekend
		"N",                                       // d_following_holiday
		itoa(DateSkForOffset(i - d.Day() + 1)),    // d_first_dom
		itoa(DateSkForOffset(i)),                  // d_last_dom (approximation)
		itoa(DateSkForOffset(i) - 365),            // d_same_day_ly
		itoa(DateSkForOffset(i) - 91),             // d_same_day_lq
		"N", "N", "N", "N", "N",                   // d_current_*
	}
}

func (g *Generator) timeDimRow(i int) []string {
	total := i * (86400 / maxInt(1, g.RowCount("time_dim")))
	h, m, s := total/3600, (total/60)%60, total%60
	ampm := "AM"
	if h >= 12 {
		ampm = "PM"
	}
	shift := "first"
	switch {
	case h >= 16:
		shift = "third"
	case h >= 8:
		shift = "second"
	}
	meal := ""
	switch {
	case h >= 6 && h < 9:
		meal = "breakfast"
	case h >= 11 && h < 14:
		meal = "lunch"
	case h >= 17 && h < 21:
		meal = "dinner"
	}
	return []string{
		itoa(i), businessKey("AAAAAAAA", i), itoa(total),
		itoa(h), itoa(m), itoa(s), ampm, shift, "morning", meal,
	}
}

func (g *Generator) itemRow(i int) []string {
	price := g.rndFloat("item", i, 0, 0.09, 9.99)
	cat := categories[i%len(categories)]
	return []string{
		itoa(i + 1),                // i_item_sk
		businessKey("AAAAAAAA", i), // i_item_id
		"1997-10-27",               // i_rec_start_date
		"",                         // i_rec_end_date (null)
		fmt.Sprintf("Item %d description for the %s category", i+1, cat), // i_item_desc
		ftoa(price),                        // i_current_price
		ftoa(price * 0.6),                  // i_wholesale_cost
		itoa(1 + i%50),                     // i_brand_id
		fmt.Sprintf("brand#%d", 1+i%50),    // i_brand
		itoa(1 + i%10),                     // i_class_id
		fmt.Sprintf("class%d", 1+i%10),     // i_class
		itoa(1 + i%len(categories)),        // i_category_id
		cat,                                // i_category
		itoa(1 + i%100),                    // i_manufact_id
		fmt.Sprintf("manufact%d", 1+i%100), // i_manufact
		[]string{"small", "medium", "large", "extra large", "petite", "N/A"}[i%6], // i_size
		fmt.Sprintf("formulation%d", i%20),                                        // i_formulation
		[]string{"red", "green", "blue", "white", "black", "ivory"}[i%6],          // i_color
		[]string{"Each", "Case", "Box", "Pound"}[i%4],                             // i_units
		[]string{"Unknown"}[0],                                                    // i_container
		itoa(1 + i%20),                                                            // i_manager_id
		fmt.Sprintf("product%d", i+1),                                             // i_product_name
	}
}

func (g *Generator) customerRow(i int) []string {
	addrCount := g.RowCount("customer_address")
	cdCount := g.RowCount("customer_demographics")
	hdCount := g.RowCount("household_demographics")
	birthYear := 1930 + g.rndInt("customer", i, 4, 60)
	return []string{
		itoa(i + 1),                // c_customer_sk
		businessKey("AAAAAAAA", i), // c_customer_id
		itoa(1 + g.rndInt("customer", i, 0, cdCount)),                      // c_current_cdemo_sk
		itoa(1 + g.rndInt("customer", i, 1, hdCount)),                      // c_current_hdemo_sk
		itoa(1 + g.rndInt("customer", i, 2, addrCount)),                    // c_current_addr_sk
		itoa(DateSkForOffset(g.rndInt("customer", i, 3, salesWindowDays))), // c_first_shipto_date_sk
		itoa(DateSkForOffset(g.rndInt("customer", i, 5, salesWindowDays))), // c_first_sales_date_sk
		[]string{"Mr.", "Mrs.", "Ms.", "Dr.", "Sir"}[i%5],                  // c_salutation
		firstNames[g.rndInt("customer", i, 6, len(firstNames))],            // c_first_name
		lastNames[g.rndInt("customer", i, 7, len(lastNames))],              // c_last_name
		yesNo[i%2],                               // c_preferred_cust_flag
		itoa(1 + g.rndInt("customer", i, 8, 28)), // c_birth_day
		itoa(1 + g.rndInt("customer", i, 9, 12)), // c_birth_month
		itoa(birthYear),                          // c_birth_year
		"UNITED STATES",                          // c_birth_country
		"",                                       // c_login (null)
		fmt.Sprintf("customer%d@example.com", i+1), // c_email_address
		itoa(DateSkForOffset(salesWindowDays - 1)), // c_last_review_date_sk
	}
}

func (g *Generator) customerAddressRow(i int) []string {
	return []string{
		itoa(i + 1),                // ca_address_sk
		businessKey("AAAAAAAA", i), // ca_address_id
		itoa(1 + g.rndInt("customer_address", i, 0, 999)),                 // ca_street_number
		streetNames[g.rndInt("customer_address", i, 1, len(streetNames))], // ca_street_name
		streetTypes[g.rndInt("customer_address", i, 2, len(streetTypes))], // ca_street_type
		fmt.Sprintf("Suite %d", g.rndInt("customer_address", i, 3, 400)),  // ca_suite_number
		cities[g.rndInt("customer_address", i, 4, len(cities))],           // ca_city
		"Williamson County", // ca_county
		states[g.rndInt("customer_address", i, 5, len(states))],              // ca_state
		fmt.Sprintf("%05d", 10000+g.rndInt("customer_address", i, 6, 89999)), // ca_zip
		"United States", // ca_country
		"-5.00",         // ca_gmt_offset
		[]string{"apartment", "condo", "single family"}[i%3], // ca_location_type
	}
}

func (g *Generator) customerDemographicsRow(i int) []string {
	// Every combination of gender / marital status / education appears,
	// cycling deterministically as the real generator does, so the Query 7
	// predicate (M / M / 4 yr Degree) selects a fixed 1/70 of demographics.
	return []string{
		itoa(i + 1),             // cd_demo_sk
		genders[i%2],            // cd_gender
		maritalStatus[(i/2)%5],  // cd_marital_status
		educations[(i/10)%7],    // cd_education_status
		itoa(500 * (1 + i%20)),  // cd_purchase_estimate
		creditRatings[(i/70)%4], // cd_credit_rating
		itoa(i % 7),             // cd_dep_count
		itoa(i % 5),             // cd_dep_employed_count
		itoa(i % 3),             // cd_dep_college_count
	}
}

func (g *Generator) householdDemographicsRow(i int) []string {
	return []string{
		itoa(i + 1),                           // hd_demo_sk
		itoa(1 + i%g.RowCount("income_band")), // hd_income_band_sk
		buyPotentials[i%len(buyPotentials)],   // hd_buy_potential
		itoa(i % 10),                          // hd_dep_count (2 for the Q46 predicate on 1/10 of rows)
		itoa(i % 5),                           // hd_vehicle_count (3 on 1/5 of rows)
	}
}

func (g *Generator) incomeBandRow(i int) []string {
	return []string{itoa(i + 1), itoa(i * 10000), itoa((i+1)*10000 - 1)}
}

func (g *Generator) promotionRow(i int) []string {
	row := []string{
		itoa(i + 1),                // p_promo_sk
		businessKey("AAAAAAAA", i), // p_promo_id
		itoa(DateSkForOffset(g.rndInt("promotion", i, 0, salesWindowDays/2))),                     // p_start_date_sk
		itoa(DateSkForOffset(salesWindowDays/2 + g.rndInt("promotion", i, 1, salesWindowDays/2))), // p_end_date_sk
		itoa(1 + g.rndInt("promotion", i, 2, g.RowCount("item"))),                                 // p_item_sk
		ftoa(1000.0),                // p_cost
		itoa(1),                     // p_response_target
		fmt.Sprintf("promo%d", i+1), // p_promo_name
	}
	// Channel flags: roughly half N, half Y, varying per channel and per row
	// so the Query 7 OR-predicate has mixed outcomes.
	for c := range channelNames {
		row = append(row, yesNo[g.rndInt("promotion", i, 3+c, 2)])
	}
	row = append(row, "in-store promotion", "promotion purpose", "N")
	return row
}

func (g *Generator) storeRow(i int) []string {
	return []string{
		itoa(i + 1),                // s_store_sk
		businessKey("AAAAAAAA", i), // s_store_id
		"1997-03-13", "",           // s_rec_start_date, s_rec_end_date
		"", // s_closed_date_sk (null)
		[]string{"ought", "able", "pri", "ese", "anti", "cally", "ation", "eing", "n st", "bar"}[i%10], // s_store_name
		itoa(200 + i%100),      // s_number_employees
		itoa(5000000 + i*1000), // s_floor_space
		"8AM-8PM",              // s_hours
		firstNames[i%len(firstNames)] + " " + lastNames[i%len(lastNames)], // s_manager
		itoa(1 + i%10),       // s_market_id
		"Unknown",            // s_geography_class
		"market description", // s_market_desc
		firstNames[(i+3)%len(firstNames)] + " " + lastNames[(i+5)%len(lastNames)], // s_market_manager
		itoa(1 + i%5),                   // s_division_id
		"Unknown",                       // s_division_name
		itoa(1 + i%6),                   // s_company_id
		"Unknown",                       // s_company_name
		itoa(100 + i),                   // s_street_number
		streetNames[i%len(streetNames)], // s_street_name
		streetTypes[i%len(streetTypes)], // s_street_type
		fmt.Sprintf("Suite %d", 100+i),  // s_suite_number
		cities[i%len(cities)],           // s_city: Midway, Fairview, ... in rotation
		"Williamson County",             // s_county
		states[i%len(states)],           // s_state
		fmt.Sprintf("%05d", 30000+i),    // s_zip
		"United States",                 // s_country
		"-5.00",                         // s_gmt_offset
		"0.03",                          // s_tax_precentage
	}
}

func (g *Generator) warehouseRow(i int) []string {
	return []string{
		itoa(i + 1),                           // w_warehouse_sk
		businessKey("AAAAAAAA", i),            // w_warehouse_id
		warehouseNames[i%len(warehouseNames)], // w_warehouse_name
		itoa(500000 + i*1000),                 // w_warehouse_sq_ft
		itoa(100 + i),                         // w_street_number
		streetNames[i%len(streetNames)],       // w_street_name
		streetTypes[i%len(streetTypes)],       // w_street_type
		fmt.Sprintf("Suite %d", i),            // w_suite_number
		cities[i%len(cities)],                 // w_city
		"Williamson County",                   // w_county
		states[i%len(states)],                 // w_state
		fmt.Sprintf("%05d", 40000+i),          // w_zip
		"United States",                       // w_country
		"-5.00",                               // w_gmt_offset
	}
}

// genericRow fills tables that the benchmark queries never touch with
// plausible values driven only by the column types.
func (g *Generator) genericRow(t *Table, i int) []string {
	row := make([]string, len(t.Columns))
	for c, col := range t.Columns {
		switch {
		case c == 0:
			row[c] = itoa(i + 1) // surrogate key
		case col.Type == ColInt:
			row[c] = itoa(g.rndInt(t.Name, i, c, 10000))
		case col.Type == ColFloat:
			row[c] = ftoa(g.rndFloat(t.Name, i, c, 0, 1000))
		case col.Type == ColDate:
			row[c] = DateForOffset(g.rndInt(t.Name, i, c, salesWindowDays)).Format("2006-01-02")
		default:
			row[c] = fmt.Sprintf("%s_%d", col.Name, i+1)
		}
	}
	return row
}

// ---------------------------------------------------------------------------
// Fact tables

// storeSaleFields are the deterministic per-row choices shared between
// store_sales and store_returns generation.
type storeSaleFields struct {
	soldDateOffset int
	itemSk         int
	customerSk     int
	cdemoSk        int
	hdemoSk        int
	addrSk         int
	storeSk        int
	promoSk        int
	ticketNumber   int
	quantity       int
	listPrice      float64
	salesPrice     float64
	couponAmt      float64
	netProfit      float64
}

func (g *Generator) storeSaleFields(i int) storeSaleFields {
	maxDate := minInt(salesWindowDays, g.RowCount("date_dim")) - 1
	return storeSaleFields{
		soldDateOffset: g.rndInt("store_sales", i, 0, maxDate),
		itemSk:         1 + g.rndInt("store_sales", i, 1, g.RowCount("item")),
		customerSk:     1 + g.rndInt("store_sales", i, 2, g.RowCount("customer")),
		cdemoSk:        1 + g.rndInt("store_sales", i, 3, g.RowCount("customer_demographics")),
		hdemoSk:        1 + g.rndInt("store_sales", i, 4, g.RowCount("household_demographics")),
		addrSk:         1 + g.rndInt("store_sales", i, 5, g.RowCount("customer_address")),
		storeSk:        1 + g.rndInt("store_sales", i, 6, g.RowCount("store")),
		promoSk:        1 + g.rndInt("store_sales", i, 7, g.RowCount("promotion")),
		ticketNumber:   i/3 + 1,
		quantity:       1 + g.rndInt("store_sales", i, 8, 100),
		listPrice:      g.rndFloat("store_sales", i, 9, 1, 200),
		salesPrice:     g.rndFloat("store_sales", i, 10, 1, 200) * 0.8,
		couponAmt:      g.rndFloat("store_sales", i, 11, 0, 20),
		netProfit:      g.rndFloat("store_sales", i, 12, -100, 250),
	}
}

func (g *Generator) storeSalesRow(i int) []string {
	f := g.storeSaleFields(i)
	wholesale := f.listPrice * 0.6
	ext := func(v float64) string { return ftoa(v * float64(f.quantity)) }
	return []string{
		itoa(DateSkForOffset(f.soldDateOffset)),                      // ss_sold_date_sk
		itoa(g.rndInt("store_sales", i, 13, g.RowCount("time_dim"))), // ss_sold_time_sk
		itoa(f.itemSk),       // ss_item_sk
		itoa(f.customerSk),   // ss_customer_sk
		itoa(f.cdemoSk),      // ss_cdemo_sk
		itoa(f.hdemoSk),      // ss_hdemo_sk
		itoa(f.addrSk),       // ss_addr_sk
		itoa(f.storeSk),      // ss_store_sk
		itoa(f.promoSk),      // ss_promo_sk
		itoa(f.ticketNumber), // ss_ticket_number
		itoa(f.quantity),     // ss_quantity
		ftoa(wholesale),      // ss_wholesale_cost
		ftoa(f.listPrice),    // ss_list_price
		ftoa(f.salesPrice),   // ss_sales_price
		ftoa(2.5),            // ss_ext_discount_amt
		ext(f.salesPrice),    // ss_ext_sales_price
		ext(wholesale),       // ss_ext_wholesale_cost
		ext(f.listPrice),     // ss_ext_list_price
		ftoa(f.salesPrice * float64(f.quantity) * 0.06), // ss_ext_tax
		ftoa(f.couponAmt), // ss_coupon_amt
		ext(f.salesPrice), // ss_net_paid
		ftoa(f.salesPrice * float64(f.quantity) * 1.06), // ss_net_paid_inc_tax
		ftoa(f.netProfit), // ss_net_profit
	}
}

func (g *Generator) storeReturnsRow(i int) []string {
	salesCount := g.RowCount("store_sales")
	returnsCount := g.RowCount("store_returns")
	// Each return references a distinct sale, spread evenly over the sales
	// so joins on (ticket_number, item_sk, customer_sk) succeed.
	stride := maxInt(1, salesCount/maxInt(1, returnsCount))
	saleIdx := (i * stride) % maxInt(1, salesCount)
	f := g.storeSaleFields(saleIdx)
	delay := 1 + g.rndInt("store_returns", i, 0, 150)
	maxDate := minInt(g.RowCount("date_dim"), calendarDays) - 1
	returnedOffset := minInt(f.soldDateOffset+delay, maxDate)
	returnQty := 1 + g.rndInt("store_returns", i, 1, f.quantity)
	returnAmt := f.salesPrice * float64(returnQty)
	return []string{
		itoa(DateSkForOffset(returnedOffset)),                         // sr_returned_date_sk
		itoa(g.rndInt("store_returns", i, 2, g.RowCount("time_dim"))), // sr_return_time_sk
		itoa(f.itemSk),     // sr_item_sk
		itoa(f.customerSk), // sr_customer_sk
		itoa(f.cdemoSk),    // sr_cdemo_sk
		itoa(f.hdemoSk),    // sr_hdemo_sk
		itoa(f.addrSk),     // sr_addr_sk
		itoa(f.storeSk),    // sr_store_sk
		itoa(1 + g.rndInt("store_returns", i, 3, g.RowCount("reason"))), // sr_reason_sk
		itoa(f.ticketNumber),   // sr_ticket_number
		itoa(returnQty),        // sr_return_quantity
		ftoa(returnAmt),        // sr_return_amt
		ftoa(returnAmt * 0.06), // sr_return_tax
		ftoa(returnAmt * 1.06), // sr_return_amt_inc_tax
		ftoa(5.0),              // sr_fee
		ftoa(returnAmt * 0.1),  // sr_return_ship_cost
		ftoa(returnAmt * 0.7),  // sr_refunded_cash
		ftoa(returnAmt * 0.2),  // sr_reversed_charge
		ftoa(returnAmt * 0.1),  // sr_store_credit
		ftoa(returnAmt * 0.5),  // sr_net_loss
	}
}

func (g *Generator) inventoryRow(i int) []string {
	// Inventory snapshots are bi-weekly per (item, warehouse) pair, covering
	// the whole sales window so Query 21 sees stock levels both before and
	// after its pivot date for every pair.
	const snapshotIntervalDays = 14
	items := g.RowCount("item")
	warehouses := g.RowCount("warehouse")
	snapshots := maxInt(1, minInt(salesWindowDays, g.RowCount("date_dim"))/snapshotIntervalDays)
	pair := i / snapshots
	snap := i % snapshots
	item := 1 + pair%items
	warehouse := 1 + (pair/items)%warehouses
	return []string{
		itoa(DateSkForOffset(snap * snapshotIntervalDays)), // inv_date_sk
		itoa(item),                              // inv_item_sk
		itoa(warehouse),                         // inv_warehouse_sk
		itoa(g.rndInt("inventory", i, 0, 1000)), // inv_quantity_on_hand
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
