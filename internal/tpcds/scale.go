package tpcds

import "fmt"

// Scale describes a dataset scale. The paper's experiments use the TPC-DS
// 1 GB and 5 GB scale factors; Table 3.6 lists every table's cardinality at
// both. This repository keeps those cardinalities as the reference model and
// divides them by a reduction Divisor so the whole suite runs at laptop
// scale while preserving every inter-table ratio. Divisor 1 reproduces the
// paper's absolute row counts.
type Scale struct {
	// Name identifies the scale in reports ("1GB", "5GB").
	Name string
	// RawGB is the paper's raw dataset size this scale mirrors.
	RawGB float64
	// LoadedGB is the dataset size once stored as documents (the 9.94 GB /
	// 41.93 GB figures of Chapter 3).
	LoadedGB float64
	// Divisor scales the Table 3.6 row counts down (1 = paper scale).
	Divisor int
}

// DefaultDivisor is the reduction factor applied to the paper's row counts by
// the stock scales.
const DefaultDivisor = 200

// Stock scales.
var (
	// ScaleSmall mirrors the thesis' 1 GB dataset (9.94 GB in MongoDB).
	ScaleSmall = Scale{Name: "1GB", RawGB: 1, LoadedGB: 9.94, Divisor: DefaultDivisor}
	// ScaleLarge mirrors the thesis' 5 GB dataset (41.93 GB in MongoDB).
	ScaleLarge = Scale{Name: "5GB", RawGB: 5, LoadedGB: 41.93, Divisor: DefaultDivisor}
)

// WithDivisor returns a copy of the scale using a different reduction factor.
func (s Scale) WithDivisor(d int) Scale {
	if d < 1 {
		d = 1
	}
	s.Divisor = d
	return s
}

// paperRowCounts1GB and paperRowCounts5GB are Table 3.6 verbatim.
var paperRowCounts1GB = map[string]int{
	"call_center":            6,
	"catalog_page":           11718,
	"catalog_returns":        144067,
	"catalog_sales":          1441548,
	"customer":               100000,
	"customer_address":       50000,
	"customer_demographics":  1920800,
	"date_dim":               73049,
	"household_demographics": 7200,
	"income_band":            20,
	"inventory":              11745000,
	"item":                   18000,
	"promotion":              300,
	"reason":                 35,
	"ship_mode":              20,
	"store":                  12,
	"store_returns":          287514,
	"store_sales":            2880404,
	"time_dim":               86400,
	"warehouse":              5,
	"web_page":               60,
	"web_returns":            71763,
	"web_sales":              719384,
	"web_site":               30,
}

var paperRowCounts5GB = map[string]int{
	"call_center":            14,
	"catalog_page":           11718,
	"catalog_returns":        720174,
	"catalog_sales":          7199490,
	"customer":               277000,
	"customer_address":       138000,
	"customer_demographics":  1920800,
	"date_dim":               73049,
	"household_demographics": 7200,
	"income_band":            20,
	"inventory":              49329000,
	"item":                   54000,
	"promotion":              388,
	"reason":                 39,
	"ship_mode":              20,
	"store":                  52,
	"store_returns":          1437911,
	"store_sales":            14400052,
	"time_dim":               86400,
	"warehouse":              7,
	"web_page":               122,
	"web_returns":            359991,
	"web_sales":              3599503,
	"web_site":               34,
}

// PaperRowCount returns the Table 3.6 cardinality of a table at this scale
// (before the divisor is applied). Unknown tables return 0.
func (s Scale) PaperRowCount(table string) int {
	if s.Name == ScaleLarge.Name || s.RawGB >= 5 {
		return paperRowCounts5GB[table]
	}
	return paperRowCounts1GB[table]
}

// calendarDays is the number of date_dim rows generated at reduced scale:
// a fixed 1998-01-01 .. 2003-12-31 window that covers every date predicate
// of the four benchmark queries.
const calendarDays = 2192

// inventorySnapshots is the number of bi-weekly inventory snapshots per
// (item, warehouse) pair over the five-year sales window (matching the
// paper-scale ratio: 11,745,000 ≈ 18,000 items × 5 warehouses × 130).
const inventorySnapshots = 130

// RowCount returns the number of rows generated for a table at this scale:
// the paper cardinality divided by the Divisor, with small dimension tables
// never reduced below their paper size (their cost is negligible and the
// queries rely on their full value domains).
func (s Scale) RowCount(table string) int {
	paper := s.PaperRowCount(table)
	if paper == 0 {
		return 0
	}
	div := s.Divisor
	if div < 1 {
		div = 1
	}
	if div == 1 {
		return paper
	}
	// The calendar keeps a fixed query-covering window at reduced scale; it
	// is identical across scales, preserving the load-time observation (i) of
	// §4.3 (equal cardinality ⇒ equal load time).
	if table == "date_dim" {
		return calendarDays
	}
	// Inventory is structural in TPC-DS: one snapshot per (item, warehouse)
	// pair every other week. Deriving the reduced-scale count from the
	// reduced item and warehouse counts keeps that structure (and therefore
	// Query 21's before/after semantics) intact at every divisor.
	if table == "inventory" {
		return s.RowCount("item") * s.RowCount("warehouse") * inventorySnapshots
	}
	// Tiny dimensions are kept whole; everything else is scaled, with a floor
	// that keeps join fan-outs and value domains non-degenerate.
	if paper <= 1000 {
		return paper
	}
	n := paper / div
	if n < 50 {
		n = 50
	}
	return n
}

// TableRowCounts returns every table's generated row count at this scale.
func (s Scale) TableRowCounts(schema *Schema) map[string]int {
	out := make(map[string]int)
	for _, t := range schema.TableNames() {
		out[t] = s.RowCount(t)
	}
	return out
}

// String renders the scale.
func (s Scale) String() string {
	return fmt.Sprintf("%s (paper %.3gGB raw / %.4gGB loaded, divisor %d)", s.Name, s.RawGB, s.LoadedGB, s.Divisor)
}
