package tpcds

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The dsdgen output format: one line per row, column values joined by '|'
// (every column value is followed by the delimiter, including the last, which
// is how the real toolkit writes its files). Null values are empty strings.

// WriteDatRow writes one row in .dat format.
func WriteDatRow(w io.Writer, row []string) error {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v)
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadDat reads .dat rows from r and invokes fn with each row's column
// values. It tolerates both trailing-delimiter and no-trailing-delimiter
// forms.
func ReadDat(r io.Reader, fn func(row []string) error) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		text := scanner.Text()
		if text == "" {
			continue
		}
		cols := strings.Split(text, "|")
		// A trailing delimiter yields one empty extra field; drop it.
		if len(cols) > 0 && cols[len(cols)-1] == "" && strings.HasSuffix(text, "|") {
			cols = cols[:len(cols)-1]
		}
		if err := fn(cols); err != nil {
			return fmt.Errorf("tpcds: line %d: %w", line, err)
		}
	}
	return scanner.Err()
}

// WriteDat generates every row of a table to w in .dat format.
func (g *Generator) WriteDat(table string, w io.Writer) error {
	bw := bufio.NewWriter(w)
	err := g.EachRow(table, func(_ int, row []string) error {
		return WriteDatRow(bw, row)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// DatFileName returns the conventional file name for a table ("store_sales.dat").
func DatFileName(table string) string { return table + ".dat" }

// GenerateDir writes every table's .dat file into dir (created if needed),
// mirroring `dsdgen -dir data`. It returns the table → file path mapping.
func (g *Generator) GenerateDir(dir string) (map[string]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, table := range g.schema.TableNames() {
		path := filepath.Join(dir, DatFileName(table))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := g.WriteDat(table, f); err != nil {
			f.Close()
			return nil, fmt.Errorf("tpcds: generating %s: %w", table, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		out[table] = path
	}
	return out, nil
}

// TableDat renders a whole table as an in-memory .dat byte slice; the
// experiment harness uses it to feed the migration algorithm without touching
// the filesystem.
func (g *Generator) TableDat(table string) ([]byte, error) {
	var sb strings.Builder
	if err := g.WriteDat(table, &stringsWriter{&sb}); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

type stringsWriter struct{ b *strings.Builder }

func (w *stringsWriter) Write(p []byte) (int, error) { return w.b.Write(p) }
