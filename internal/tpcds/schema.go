// Package tpcds implements the TPC-DS substrate used by the thesis: the
// 24-table retail snowflake schema (7 fact tables, 17 dimension tables), a
// deterministic synthetic data generator whose per-table cardinalities follow
// the row-count model of Table 3.6, a pipe-delimited ".dat" file writer and
// reader matching the dsdgen output format, and the catalog of the four data
// mining queries (Q7, Q21, Q46, Q50) with the features of Table 3.5.
//
// The real TPC-DS toolkit (dsdgen/dsqgen) is proprietary C code driven by
// distribution files; this package substitutes a synthetic generator that
// preserves what the evaluation depends on — table cardinalities and their
// ratios across scales, the foreign-key topology of Figures 3.2–3.4, and
// value distributions that give the four queries non-trivial selectivities.
package tpcds

import (
	"fmt"
	"sort"
)

// ColumnType is the SQL-ish type of a column, used when migrating string
// fields from .dat files into typed document values.
type ColumnType int

// Column types.
const (
	ColInt ColumnType = iota
	ColFloat
	ColString
	ColDate // calendar date rendered as "YYYY-MM-DD"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColumnType
}

// ForeignKey links a fact/dimension column to the primary key of another
// table.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Table describes one TPC-DS table.
type Table struct {
	Name        string
	Fact        bool
	PrimaryKey  []string
	Columns     []Column
	ForeignKeys []ForeignKey
}

// Column index lookup.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// ForeignKeyFor returns the foreign key declared on the named column, or nil.
func (t *Table) ForeignKeyFor(column string) *ForeignKey {
	for i := range t.ForeignKeys {
		if t.ForeignKeys[i].Column == column {
			return &t.ForeignKeys[i]
		}
	}
	return nil
}

// Schema is the full table catalog.
type Schema struct {
	tables map[string]*Table
}

// NewSchema returns the TPC-DS schema.
func NewSchema() *Schema {
	s := &Schema{tables: make(map[string]*Table)}
	for _, t := range buildTables() {
		s.tables[t.Name] = t
	}
	return s
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table { return s.tables[name] }

// TableNames lists every table in sorted order.
func (s *Schema) TableNames() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FactTables lists the fact tables in sorted order.
func (s *Schema) FactTables() []string {
	var out []string
	for n, t := range s.tables {
		if t.Fact {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// DimensionTables lists the dimension tables in sorted order.
func (s *Schema) DimensionTables() []string {
	var out []string
	for n, t := range s.tables {
		if !t.Fact {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// MustTable returns the named table or panics; for statically known names.
func (s *Schema) MustTable(name string) *Table {
	t := s.Table(name)
	if t == nil {
		panic(fmt.Sprintf("tpcds: unknown table %q", name))
	}
	return t
}

func cols(pairs ...any) []Column {
	if len(pairs)%2 != 0 {
		panic("tpcds: cols requires name/type pairs")
	}
	out := make([]Column, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Column{Name: pairs[i].(string), Type: pairs[i+1].(ColumnType)})
	}
	return out
}

// buildTables declares the 24 TPC-DS tables. The tables touched by the four
// benchmark queries carry their full production column lists; the remaining
// tables carry representative column subsets sufficient for data-load
// benchmarking (Table 4.3) while keeping the generator honest about relative
// row widths.
func buildTables() []*Table {
	return []*Table{
		// ------------------------------------------------------------- facts
		{
			Name: "store_sales", Fact: true,
			PrimaryKey: []string{"ss_item_sk", "ss_ticket_number"},
			Columns: cols(
				"ss_sold_date_sk", ColInt, "ss_sold_time_sk", ColInt, "ss_item_sk", ColInt,
				"ss_customer_sk", ColInt, "ss_cdemo_sk", ColInt, "ss_hdemo_sk", ColInt,
				"ss_addr_sk", ColInt, "ss_store_sk", ColInt, "ss_promo_sk", ColInt,
				"ss_ticket_number", ColInt, "ss_quantity", ColInt, "ss_wholesale_cost", ColFloat,
				"ss_list_price", ColFloat, "ss_sales_price", ColFloat, "ss_ext_discount_amt", ColFloat,
				"ss_ext_sales_price", ColFloat, "ss_ext_wholesale_cost", ColFloat, "ss_ext_list_price", ColFloat,
				"ss_ext_tax", ColFloat, "ss_coupon_amt", ColFloat, "ss_net_paid", ColFloat,
				"ss_net_paid_inc_tax", ColFloat, "ss_net_profit", ColFloat,
			),
			ForeignKeys: []ForeignKey{
				{"ss_sold_date_sk", "date_dim", "d_date_sk"},
				{"ss_sold_time_sk", "time_dim", "t_time_sk"},
				{"ss_item_sk", "item", "i_item_sk"},
				{"ss_customer_sk", "customer", "c_customer_sk"},
				{"ss_cdemo_sk", "customer_demographics", "cd_demo_sk"},
				{"ss_hdemo_sk", "household_demographics", "hd_demo_sk"},
				{"ss_addr_sk", "customer_address", "ca_address_sk"},
				{"ss_store_sk", "store", "s_store_sk"},
				{"ss_promo_sk", "promotion", "p_promo_sk"},
			},
		},
		{
			Name: "store_returns", Fact: true,
			PrimaryKey: []string{"sr_item_sk", "sr_ticket_number"},
			Columns: cols(
				"sr_returned_date_sk", ColInt, "sr_return_time_sk", ColInt, "sr_item_sk", ColInt,
				"sr_customer_sk", ColInt, "sr_cdemo_sk", ColInt, "sr_hdemo_sk", ColInt,
				"sr_addr_sk", ColInt, "sr_store_sk", ColInt, "sr_reason_sk", ColInt,
				"sr_ticket_number", ColInt, "sr_return_quantity", ColInt, "sr_return_amt", ColFloat,
				"sr_return_tax", ColFloat, "sr_return_amt_inc_tax", ColFloat, "sr_fee", ColFloat,
				"sr_return_ship_cost", ColFloat, "sr_refunded_cash", ColFloat, "sr_reversed_charge", ColFloat,
				"sr_store_credit", ColFloat, "sr_net_loss", ColFloat,
			),
			ForeignKeys: []ForeignKey{
				{"sr_returned_date_sk", "date_dim", "d_date_sk"},
				{"sr_return_time_sk", "time_dim", "t_time_sk"},
				{"sr_item_sk", "item", "i_item_sk"},
				{"sr_customer_sk", "customer", "c_customer_sk"},
				{"sr_cdemo_sk", "customer_demographics", "cd_demo_sk"},
				{"sr_hdemo_sk", "household_demographics", "hd_demo_sk"},
				{"sr_addr_sk", "customer_address", "ca_address_sk"},
				{"sr_store_sk", "store", "s_store_sk"},
				{"sr_reason_sk", "reason", "r_reason_sk"},
			},
		},
		{
			Name: "inventory", Fact: true,
			PrimaryKey: []string{"inv_date_sk", "inv_item_sk", "inv_warehouse_sk"},
			Columns: cols(
				"inv_date_sk", ColInt, "inv_item_sk", ColInt, "inv_warehouse_sk", ColInt,
				"inv_quantity_on_hand", ColInt,
			),
			ForeignKeys: []ForeignKey{
				{"inv_date_sk", "date_dim", "d_date_sk"},
				{"inv_item_sk", "item", "i_item_sk"},
				{"inv_warehouse_sk", "warehouse", "w_warehouse_sk"},
			},
		},
		{
			Name: "catalog_sales", Fact: true,
			PrimaryKey: []string{"cs_item_sk", "cs_order_number"},
			Columns: cols(
				"cs_sold_date_sk", ColInt, "cs_sold_time_sk", ColInt, "cs_ship_date_sk", ColInt,
				"cs_bill_customer_sk", ColInt, "cs_bill_cdemo_sk", ColInt, "cs_bill_hdemo_sk", ColInt,
				"cs_bill_addr_sk", ColInt, "cs_ship_customer_sk", ColInt, "cs_call_center_sk", ColInt,
				"cs_catalog_page_sk", ColInt, "cs_ship_mode_sk", ColInt, "cs_warehouse_sk", ColInt,
				"cs_item_sk", ColInt, "cs_promo_sk", ColInt, "cs_order_number", ColInt,
				"cs_quantity", ColInt, "cs_wholesale_cost", ColFloat, "cs_list_price", ColFloat,
				"cs_sales_price", ColFloat, "cs_ext_sales_price", ColFloat, "cs_net_paid", ColFloat,
				"cs_net_profit", ColFloat,
			),
			ForeignKeys: []ForeignKey{
				{"cs_sold_date_sk", "date_dim", "d_date_sk"},
				{"cs_item_sk", "item", "i_item_sk"},
				{"cs_bill_customer_sk", "customer", "c_customer_sk"},
				{"cs_warehouse_sk", "warehouse", "w_warehouse_sk"},
				{"cs_promo_sk", "promotion", "p_promo_sk"},
			},
		},
		{
			Name: "catalog_returns", Fact: true,
			PrimaryKey: []string{"cr_item_sk", "cr_order_number"},
			Columns: cols(
				"cr_returned_date_sk", ColInt, "cr_returned_time_sk", ColInt, "cr_item_sk", ColInt,
				"cr_refunded_customer_sk", ColInt, "cr_returning_customer_sk", ColInt, "cr_call_center_sk", ColInt,
				"cr_catalog_page_sk", ColInt, "cr_ship_mode_sk", ColInt, "cr_warehouse_sk", ColInt,
				"cr_reason_sk", ColInt, "cr_order_number", ColInt, "cr_return_quantity", ColInt,
				"cr_return_amount", ColFloat, "cr_return_tax", ColFloat, "cr_net_loss", ColFloat,
			),
			ForeignKeys: []ForeignKey{
				{"cr_returned_date_sk", "date_dim", "d_date_sk"},
				{"cr_item_sk", "item", "i_item_sk"},
				{"cr_reason_sk", "reason", "r_reason_sk"},
			},
		},
		{
			Name: "web_sales", Fact: true,
			PrimaryKey: []string{"ws_item_sk", "ws_order_number"},
			Columns: cols(
				"ws_sold_date_sk", ColInt, "ws_sold_time_sk", ColInt, "ws_ship_date_sk", ColInt,
				"ws_item_sk", ColInt, "ws_bill_customer_sk", ColInt, "ws_bill_cdemo_sk", ColInt,
				"ws_bill_hdemo_sk", ColInt, "ws_bill_addr_sk", ColInt, "ws_web_page_sk", ColInt,
				"ws_web_site_sk", ColInt, "ws_ship_mode_sk", ColInt, "ws_warehouse_sk", ColInt,
				"ws_promo_sk", ColInt, "ws_order_number", ColInt, "ws_quantity", ColInt,
				"ws_wholesale_cost", ColFloat, "ws_list_price", ColFloat, "ws_sales_price", ColFloat,
				"ws_ext_sales_price", ColFloat, "ws_net_paid", ColFloat, "ws_net_profit", ColFloat,
			),
			ForeignKeys: []ForeignKey{
				{"ws_sold_date_sk", "date_dim", "d_date_sk"},
				{"ws_item_sk", "item", "i_item_sk"},
				{"ws_bill_customer_sk", "customer", "c_customer_sk"},
				{"ws_web_site_sk", "web_site", "web_site_sk"},
			},
		},
		{
			Name: "web_returns", Fact: true,
			PrimaryKey: []string{"wr_item_sk", "wr_order_number"},
			Columns: cols(
				"wr_returned_date_sk", ColInt, "wr_returned_time_sk", ColInt, "wr_item_sk", ColInt,
				"wr_refunded_customer_sk", ColInt, "wr_returning_customer_sk", ColInt, "wr_web_page_sk", ColInt,
				"wr_reason_sk", ColInt, "wr_order_number", ColInt, "wr_return_quantity", ColInt,
				"wr_return_amt", ColFloat, "wr_return_tax", ColFloat, "wr_net_loss", ColFloat,
			),
			ForeignKeys: []ForeignKey{
				{"wr_returned_date_sk", "date_dim", "d_date_sk"},
				{"wr_item_sk", "item", "i_item_sk"},
				{"wr_reason_sk", "reason", "r_reason_sk"},
			},
		},
		// -------------------------------------------------------- dimensions
		{
			Name: "date_dim", PrimaryKey: []string{"d_date_sk"},
			Columns: cols(
				"d_date_sk", ColInt, "d_date_id", ColString, "d_date", ColDate,
				"d_month_seq", ColInt, "d_week_seq", ColInt, "d_quarter_seq", ColInt,
				"d_year", ColInt, "d_dow", ColInt, "d_moy", ColInt, "d_dom", ColInt,
				"d_qoy", ColInt, "d_fy_year", ColInt, "d_fy_quarter_seq", ColInt,
				"d_fy_week_seq", ColInt, "d_day_name", ColString, "d_quarter_name", ColString,
				"d_holiday", ColString, "d_weekend", ColString, "d_following_holiday", ColString,
				"d_first_dom", ColInt, "d_last_dom", ColInt, "d_same_day_ly", ColInt,
				"d_same_day_lq", ColInt, "d_current_day", ColString, "d_current_week", ColString,
				"d_current_month", ColString, "d_current_quarter", ColString, "d_current_year", ColString,
			),
		},
		{
			Name: "time_dim", PrimaryKey: []string{"t_time_sk"},
			Columns: cols(
				"t_time_sk", ColInt, "t_time_id", ColString, "t_time", ColInt,
				"t_hour", ColInt, "t_minute", ColInt, "t_second", ColInt,
				"t_am_pm", ColString, "t_shift", ColString, "t_sub_shift", ColString,
				"t_meal_time", ColString,
			),
		},
		{
			Name: "item", PrimaryKey: []string{"i_item_sk"},
			Columns: cols(
				"i_item_sk", ColInt, "i_item_id", ColString, "i_rec_start_date", ColDate,
				"i_rec_end_date", ColDate, "i_item_desc", ColString, "i_current_price", ColFloat,
				"i_wholesale_cost", ColFloat, "i_brand_id", ColInt, "i_brand", ColString,
				"i_class_id", ColInt, "i_class", ColString, "i_category_id", ColInt,
				"i_category", ColString, "i_manufact_id", ColInt, "i_manufact", ColString,
				"i_size", ColString, "i_formulation", ColString, "i_color", ColString,
				"i_units", ColString, "i_container", ColString, "i_manager_id", ColInt,
				"i_product_name", ColString,
			),
		},
		{
			Name: "customer", PrimaryKey: []string{"c_customer_sk"},
			Columns: cols(
				"c_customer_sk", ColInt, "c_customer_id", ColString, "c_current_cdemo_sk", ColInt,
				"c_current_hdemo_sk", ColInt, "c_current_addr_sk", ColInt, "c_first_shipto_date_sk", ColInt,
				"c_first_sales_date_sk", ColInt, "c_salutation", ColString, "c_first_name", ColString,
				"c_last_name", ColString, "c_preferred_cust_flag", ColString, "c_birth_day", ColInt,
				"c_birth_month", ColInt, "c_birth_year", ColInt, "c_birth_country", ColString,
				"c_login", ColString, "c_email_address", ColString, "c_last_review_date_sk", ColInt,
			),
			ForeignKeys: []ForeignKey{
				{"c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"},
				{"c_current_hdemo_sk", "household_demographics", "hd_demo_sk"},
				{"c_current_addr_sk", "customer_address", "ca_address_sk"},
			},
		},
		{
			Name: "customer_address", PrimaryKey: []string{"ca_address_sk"},
			Columns: cols(
				"ca_address_sk", ColInt, "ca_address_id", ColString, "ca_street_number", ColString,
				"ca_street_name", ColString, "ca_street_type", ColString, "ca_suite_number", ColString,
				"ca_city", ColString, "ca_county", ColString, "ca_state", ColString,
				"ca_zip", ColString, "ca_country", ColString, "ca_gmt_offset", ColFloat,
				"ca_location_type", ColString,
			),
		},
		{
			Name: "customer_demographics", PrimaryKey: []string{"cd_demo_sk"},
			Columns: cols(
				"cd_demo_sk", ColInt, "cd_gender", ColString, "cd_marital_status", ColString,
				"cd_education_status", ColString, "cd_purchase_estimate", ColInt, "cd_credit_rating", ColString,
				"cd_dep_count", ColInt, "cd_dep_employed_count", ColInt, "cd_dep_college_count", ColInt,
			),
		},
		{
			Name: "household_demographics", PrimaryKey: []string{"hd_demo_sk"},
			Columns: cols(
				"hd_demo_sk", ColInt, "hd_income_band_sk", ColInt, "hd_buy_potential", ColString,
				"hd_dep_count", ColInt, "hd_vehicle_count", ColInt,
			),
			ForeignKeys: []ForeignKey{{"hd_income_band_sk", "income_band", "ib_income_band_sk"}},
		},
		{
			Name: "income_band", PrimaryKey: []string{"ib_income_band_sk"},
			Columns: cols(
				"ib_income_band_sk", ColInt, "ib_lower_bound", ColInt, "ib_upper_bound", ColInt,
			),
		},
		{
			Name: "promotion", PrimaryKey: []string{"p_promo_sk"},
			Columns: cols(
				"p_promo_sk", ColInt, "p_promo_id", ColString, "p_start_date_sk", ColInt,
				"p_end_date_sk", ColInt, "p_item_sk", ColInt, "p_cost", ColFloat,
				"p_response_target", ColInt, "p_promo_name", ColString, "p_channel_dmail", ColString,
				"p_channel_email", ColString, "p_channel_catalog", ColString, "p_channel_tv", ColString,
				"p_channel_radio", ColString, "p_channel_press", ColString, "p_channel_event", ColString,
				"p_channel_demo", ColString, "p_channel_details", ColString, "p_purpose", ColString,
				"p_discount_active", ColString,
			),
		},
		{
			Name: "store", PrimaryKey: []string{"s_store_sk"},
			Columns: cols(
				"s_store_sk", ColInt, "s_store_id", ColString, "s_rec_start_date", ColDate,
				"s_rec_end_date", ColDate, "s_closed_date_sk", ColInt, "s_store_name", ColString,
				"s_number_employees", ColInt, "s_floor_space", ColInt, "s_hours", ColString,
				"s_manager", ColString, "s_market_id", ColInt, "s_geography_class", ColString,
				"s_market_desc", ColString, "s_market_manager", ColString, "s_division_id", ColInt,
				"s_division_name", ColString, "s_company_id", ColInt, "s_company_name", ColString,
				"s_street_number", ColString, "s_street_name", ColString, "s_street_type", ColString,
				"s_suite_number", ColString, "s_city", ColString, "s_county", ColString,
				"s_state", ColString, "s_zip", ColString, "s_country", ColString,
				"s_gmt_offset", ColFloat, "s_tax_precentage", ColFloat,
			),
		},
		{
			Name: "warehouse", PrimaryKey: []string{"w_warehouse_sk"},
			Columns: cols(
				"w_warehouse_sk", ColInt, "w_warehouse_id", ColString, "w_warehouse_name", ColString,
				"w_warehouse_sq_ft", ColInt, "w_street_number", ColString, "w_street_name", ColString,
				"w_street_type", ColString, "w_suite_number", ColString, "w_city", ColString,
				"w_county", ColString, "w_state", ColString, "w_zip", ColString,
				"w_country", ColString, "w_gmt_offset", ColFloat,
			),
		},
		{
			Name: "reason", PrimaryKey: []string{"r_reason_sk"},
			Columns: cols(
				"r_reason_sk", ColInt, "r_reason_id", ColString, "r_reason_desc", ColString,
			),
		},
		{
			Name: "ship_mode", PrimaryKey: []string{"sm_ship_mode_sk"},
			Columns: cols(
				"sm_ship_mode_sk", ColInt, "sm_ship_mode_id", ColString, "sm_type", ColString,
				"sm_code", ColString, "sm_carrier", ColString, "sm_contract", ColString,
			),
		},
		{
			Name: "call_center", PrimaryKey: []string{"cc_call_center_sk"},
			Columns: cols(
				"cc_call_center_sk", ColInt, "cc_call_center_id", ColString, "cc_name", ColString,
				"cc_class", ColString, "cc_employees", ColInt, "cc_sq_ft", ColInt,
				"cc_hours", ColString, "cc_manager", ColString, "cc_city", ColString,
				"cc_state", ColString,
			),
		},
		{
			Name: "catalog_page", PrimaryKey: []string{"cp_catalog_page_sk"},
			Columns: cols(
				"cp_catalog_page_sk", ColInt, "cp_catalog_page_id", ColString, "cp_start_date_sk", ColInt,
				"cp_end_date_sk", ColInt, "cp_department", ColString, "cp_catalog_number", ColInt,
				"cp_catalog_page_number", ColInt, "cp_description", ColString, "cp_type", ColString,
			),
		},
		{
			Name: "web_page", PrimaryKey: []string{"wp_web_page_sk"},
			Columns: cols(
				"wp_web_page_sk", ColInt, "wp_web_page_id", ColString, "wp_creation_date_sk", ColInt,
				"wp_access_date_sk", ColInt, "wp_autogen_flag", ColString, "wp_url", ColString,
				"wp_type", ColString, "wp_char_count", ColInt, "wp_link_count", ColInt,
				"wp_image_count", ColInt,
			),
		},
		{
			Name: "web_site", PrimaryKey: []string{"web_site_sk"},
			Columns: cols(
				"web_site_sk", ColInt, "web_site_id", ColString, "web_name", ColString,
				"web_open_date_sk", ColInt, "web_close_date_sk", ColInt, "web_class", ColString,
				"web_manager", ColString, "web_market_id", ColInt, "web_company_id", ColInt,
				"web_company_name", ColString, "web_city", ColString, "web_state", ColString,
			),
		},
	}
}
