package mongos

import (
	"fmt"

	"docstore/internal/mongod"
)

// ClusterCheckpointStats reports a cluster-consistent checkpoint: one
// per-shard checkpoint, all taken at a single capture point.
type ClusterCheckpointStats struct {
	Shards map[string]mongod.CheckpointStats
}

// Checkpoint takes a cluster-consistent checkpoint across every shard with a
// two-phase capture. Phase 1 holds writes on every shard simultaneously
// (registration order), pins a capture on each — snapshots of every
// collection plus the shard's WAL position — and releases every hold; the
// cluster-wide pause is O(collections) pin registrations, no disk I/O.
// Phase 2 streams each shard's checkpoint from its pinned capture while
// writes flow again.
//
// The simultaneous hold is what makes the cut cluster-consistent: every
// capture is read while no shard can accept a write, so for any two
// causally ordered writes (the second issued after the first acknowledged)
// the captures contain the second only if they contain the first — no shard
// restores ahead of another. Each shard publishes its checkpoint directory
// with an atomic rename, so a shard that dies mid-stream leaves its previous
// checkpoint intact: the cluster checkpoint is wholly at the capture point
// or cleanly absent, never torn.
//
// Sharding metadata (the config server's shard-key table) is in-memory and
// not part of the capture; a cluster restored from checkpoints re-issues its
// shardCollection commands.
func (r *Router) Checkpoint() (ClusterCheckpointStats, error) {
	names := r.ShardNames()
	stats := ClusterCheckpointStats{Shards: make(map[string]mongod.CheckpointStats, len(names))}

	// Phase 1: hold all, capture all, release all.
	releases := make([]func(), 0, len(names))
	captures := make([]*mongod.CheckpointCapture, len(names))
	for _, name := range names {
		releases = append(releases, r.Shard(name).HoldAllWrites())
	}
	for i, name := range names {
		captures[i] = r.Shard(name).CaptureHeld()
	}
	for i := len(releases) - 1; i >= 0; i-- {
		releases[i]()
	}

	// Phase 2: stream every shard from its pinned capture. A failing shard
	// does not stop the others — their checkpoints are still wholly at the
	// capture point — but the first error is reported.
	var firstErr error
	for i, name := range names {
		st, err := r.Shard(name).CheckpointFrom(captures[i])
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mongos: checkpoint of shard %s: %w", name, err)
		}
		stats.Shards[name] = st
	}
	return stats, firstErr
}
