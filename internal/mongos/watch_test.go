package mongos

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/mongod"
	"docstore/internal/sharding"
	"docstore/internal/storage"
)

const watchWait = 2 * time.Second

// durableCluster builds a router over n durable shards whose data
// directories live under dir, so a second call with the same dir restarts
// the cluster from its logs.
func durableCluster(t *testing.T, dir string, n int) *Router {
	t.Helper()
	r := NewRouter(sharding.NewConfigServer(), Options{Parallel: true})
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("Shard%d", i)
		s := mongod.NewServer(mongod.Options{Name: name})
		if _, err := s.EnableDurability(mongod.Durability{Dir: filepath.Join(dir, name)}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.CloseDurability() })
		r.AddShard(name, s)
	}
	return r
}

// collectShardIDs drains events until count documents were observed,
// asserting per-shard non-decreasing LSN order and exactly-once delivery
// into seen.
func collectShardIDs(t *testing.T, stream changestream.Stream, seen map[string]bool, lastLSN map[string]int64, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		ev, err := stream.Next(watchWait)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if ev == nil {
			t.Fatalf("stream went quiet after %d of %d events", i, count)
		}
		if ev.Shard == "" {
			t.Fatalf("cluster event without shard: %v", ev.Doc())
		}
		if ev.Token.LSN < lastLSN[ev.Shard] {
			t.Fatalf("shard %s LSN went backwards: %d after %d", ev.Shard, ev.Token.LSN, lastLSN[ev.Shard])
		}
		lastLSN[ev.Shard] = ev.Token.LSN
		id, _ := ev.DocumentKey.Get(bson.IDKey)
		key := fmt.Sprint(id)
		if seen[key] {
			t.Fatalf("duplicate event for %s", key)
		}
		seen[key] = true
	}
}

// TestClusterWatchExactlyOnce is the acceptance scenario: a mongos watcher
// over a 4-shard cluster under concurrent unordered bulk writes observes
// every committed write exactly once, in non-decreasing LSN order per shard
// — and, after closing mid-stream, resumes from its composite token with no
// loss or duplication, including across a full cluster restart.
func TestClusterWatchExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	r := durableCluster(t, dir, 4)
	if _, err := r.EnableSharding("db", "rows", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}

	stream, err := r.Watch("db", "rows", nil, "")
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 120
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i += 20 {
				ops := make([]storage.WriteOp, 0, 20)
				for j := 0; j < 20; j++ {
					id := fmt.Sprintf("w%d-%d", w, i+j)
					ops = append(ops, storage.InsertWriteOp(bson.D(bson.IDKey, id, "k", id)))
				}
				res := r.BulkWrite("db", "rows", ops, storage.BulkOptions{})
				if err := res.FirstError(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	const total = writers * perWriter
	seen := make(map[string]bool)
	lastLSN := make(map[string]int64)

	// Consume the first half concurrently with the writers, then close the
	// stream mid-flight and remember its composite token.
	collectShardIDs(t, stream, seen, lastLSN, total/2)
	token := stream.ResumeToken()
	stream.Close()
	wg.Wait()

	if _, err := changestream.ParseCompositeToken(token); err != nil {
		t.Fatalf("composite token %q: %v", token, err)
	}

	// Restart the whole cluster from its logs, then resume from the token.
	for _, name := range r.ShardNames() {
		if err := r.Shard(name).CloseDurability(); err != nil {
			t.Fatal(err)
		}
	}
	r2 := durableCluster(t, dir, 4)
	if _, err := r2.EnableSharding("db", "rows", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	resumed, err := r2.Watch("db", "rows", nil, token)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()

	// New writes after the restart join the tail of the resumed stream.
	const extra = 40
	for i := 0; i < extra; i++ {
		if _, err := r2.Insert("db", "rows", bson.D(bson.IDKey, fmt.Sprintf("post-%d", i), "k", i)); err != nil {
			t.Fatal(err)
		}
	}
	// lastLSN resets: the resumed replay legitimately starts below the live
	// positions the first stream reached.
	collectShardIDs(t, resumed, seen, make(map[string]int64), total/2+extra)
	if ev, err := resumed.Next(50 * time.Millisecond); err != nil || ev != nil {
		t.Fatalf("stream should be quiet after the tail: %v %v", ev, err)
	}
	if len(seen) != total+extra {
		t.Fatalf("observed %d distinct documents, want %d", len(seen), total+extra)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if key := fmt.Sprintf("w%d-%d", w, i); !seen[key] {
				t.Fatalf("committed write %s never observed", key)
			}
		}
	}
	for i := 0; i < extra; i++ {
		if key := fmt.Sprintf("post-%d", i); !seen[key] {
			t.Fatalf("post-restart write %s never observed", key)
		}
	}
}

// TestClusterWatchPipelinePushdown checks the $match pipeline reaches every
// shard stream.
func TestClusterWatchPipelinePushdown(t *testing.T) {
	r := durableCluster(t, t.TempDir(), 2)
	if _, err := r.EnableSharding("db", "rows", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	stream, err := r.Watch("db", "rows", []*bson.Doc{
		bson.D("$match", bson.D("fullDocument.keep", true)),
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	for i := 0; i < 20; i++ {
		doc := bson.D(bson.IDKey, i, "k", i, "keep", i%4 == 0)
		if _, err := r.Insert("db", "rows", doc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		ev, err := stream.Next(watchWait)
		if err != nil || ev == nil {
			t.Fatalf("event %d: %v %v", i, ev, err)
		}
		if keep, _ := ev.FullDocument.Get("keep"); keep != true {
			t.Fatalf("filter leaked %v", ev.FullDocument)
		}
	}
	if ev, err := stream.Next(50 * time.Millisecond); err != nil || ev != nil {
		t.Fatalf("expected quiet stream, got %v %v", ev, err)
	}
}

// TestClusterWatchUnknownShardToken checks a composite token naming a shard
// the router does not know is rejected.
func TestClusterWatchUnknownShardToken(t *testing.T) {
	r := durableCluster(t, t.TempDir(), 2)
	tok := changestream.CompositeToken{"Ghost": {LSN: 1, Op: 0}}
	if _, err := r.Watch("db", "rows", nil, tok.String()); err == nil {
		t.Fatal("unknown shard in token should be rejected")
	}
}

// TestClusterWatchShardDeathTearsDownStream checks one shard's stream dying
// (shard shutdown here) surfaces as a terminal error on the merged stream
// instead of silently omitting that shard's events forever.
func TestClusterWatchShardDeathTearsDownStream(t *testing.T) {
	r := durableCluster(t, t.TempDir(), 2)
	stream, err := r.Watch("db", "rows", nil, "")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if err := r.Shard("Shard1").CloseDurability(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ev, err := stream.Next(100 * time.Millisecond)
		if err != nil {
			break // the shard death surfaced
		}
		if ev != nil {
			t.Fatalf("unexpected event: %v", ev.Doc())
		}
		if time.Now().After(deadline) {
			t.Fatal("merged stream kept running after a shard stream died")
		}
	}
	// Both shards' subscriptions are torn down with the stream.
	if st := r.Shard("Shard2").ChangeStreams().Stats(); st.Watchers != 0 {
		t.Fatalf("surviving shard still has %d watchers", st.Watchers)
	}
}

// TestClusterWatchCloseReleasesPumps checks Close tears down every per-shard
// subscription (no leaked watcher goroutine or buffer).
func TestClusterWatchCloseReleasesPumps(t *testing.T) {
	r := durableCluster(t, t.TempDir(), 3)
	stream, err := r.Watch("db", "rows", nil, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.ShardNames() {
		if st := r.Shard(name).ChangeStreams().Stats(); st.Watchers != 1 {
			t.Fatalf("shard %s watchers = %d before close", name, st.Watchers)
		}
	}
	stream.Close()
	for _, name := range r.ShardNames() {
		if st := r.Shard(name).ChangeStreams().Stats(); st.Watchers != 0 {
			t.Fatalf("shard %s watchers = %d after close", name, st.Watchers)
		}
	}
	// Close is idempotent and Next reports the closed stream.
	stream.Close()
	if _, err := stream.Next(10 * time.Millisecond); err == nil {
		t.Fatal("Next on a closed stream should fail")
	}
}
