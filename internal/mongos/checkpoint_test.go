package mongos

import (
	"os"
	"path/filepath"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/sharding"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// TestClusterCheckpointSingleCapturePoint proves Router.Checkpoint cuts the
// whole cluster at one capture point. A writer issues causally ordered
// inserts — document i+1 only after document i is acknowledged — into a
// hash-sharded collection, so consecutive documents land on different
// shards. The cluster checkpoint runs while the writer flows; each shard's
// WAL is then destroyed so recovery restores the checkpoints alone. If the
// shards were captured independently the restored id set would have holes
// (a later document on one shard, an earlier one missing on another); a
// single capture point restores exactly a prefix 0..m-1 of the insert
// sequence.
func TestClusterCheckpointSingleCapturePoint(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	build := func() *Router {
		r := NewRouter(sharding.NewConfigServer(), Options{Parallel: true})
		for i, dir := range dirs {
			shard := mongod.NewServer(mongod.Options{Name: "Shard" + string(rune('1'+i))})
			if _, err := shard.EnableDurability(mongod.Durability{Dir: dir, Sync: wal.SyncNone}); err != nil {
				t.Fatalf("EnableDurability shard %d: %v", i, err)
			}
			r.AddShard("Shard"+string(rune('1'+i)), shard)
		}
		// Sharding metadata is in-memory and outside the capture: every
		// incarnation of the cluster re-issues its shardCollection commands.
		if _, err := r.EnableSharding("db", "seq", bson.D("k", "hashed"), 0); err != nil {
			t.Fatalf("EnableSharding: %v", err)
		}
		return r
	}
	r := build()

	const total = 500
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if _, err := r.Insert("db", "seq", bson.D(bson.IDKey, i, "k", i)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			if i == 60 {
				close(started)
			}
		}
	}()

	<-started
	st, err := r.Checkpoint()
	if err != nil {
		t.Fatalf("cluster checkpoint: %v", err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("checkpointed %d shards, want 2", len(st.Shards))
	}
	for name, shard := range st.Shards {
		if shard.Skipped || shard.Collections == 0 {
			t.Fatalf("shard %s checkpoint = %+v, want a fresh capture with collections", name, shard)
		}
	}
	<-done

	// Crash the whole cluster and lose every shard's log, so recovery can
	// only restore what the captures pinned.
	for _, dir := range dirs {
		segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range segs {
			if err := os.Remove(seg); err != nil {
				t.Fatal(err)
			}
		}
	}
	r2 := build()

	docs, err := r2.Find("db", "seq", nil, storage.FindOptions{})
	if err != nil {
		t.Fatalf("post-restore find: %v", err)
	}
	if len(docs) < 60 {
		t.Fatalf("capture happened after doc 60 yet the cluster restored only %d docs", len(docs))
	}
	seen := make(map[int64]bool, len(docs))
	for _, d := range docs {
		id, ok := bson.AsInt(d.ID())
		if !ok || seen[id] {
			t.Fatalf("restored id %v duplicated or non-numeric", d.ID())
		}
		seen[id] = true
	}
	for i := int64(0); i < int64(len(docs)); i++ {
		if !seen[i] {
			t.Fatalf("cluster restored %d docs but lacks id %d: shards restored to different capture points", len(docs), i)
		}
	}
}
