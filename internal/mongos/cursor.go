package mongos

import (
	"fmt"
	"sync"

	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// Cursor is the router's streaming result cursor: a k-way merge over
// per-shard storage cursors. Each shard cursor pins its shard's committed
// storage version at open, so the merge reads one immutable snapshot per
// shard — the prefetch pumps scan entirely lock-free and are never stalled
// by (nor ever stall) bulk writes the router keeps scattering to the same
// shards. Instead of gathering every shard's full result and merging
// afterwards, the router pulls shard cursors in batches — lazily when
// Options.Parallel is off, via one prefetching goroutine per shard when it
// is on — so the router's peak memory is O(shards × batch) rather than
// O(result). When the query carries a sort, each shard cursor is already
// ordered and the merge pops the smallest head (ties resolved by shard
// registration order, matching query.Sort.Merge); without a sort the shard
// streams are concatenated in target order.
//
// Cursors are not safe for concurrent use by multiple goroutines.
type Cursor struct {
	r     *Router
	sort  query.Sort
	feeds []*feed
	done  chan struct{} // stops parallel pumps

	skipLeft  int
	limitLeft int // -1 = unlimited
	inited    bool
	seq       int // current feed in concatenation mode

	pulled   int64 // docs pulled from shards, flushed to RoutingStats
	finished bool
	closed   bool
}

// feed is one shard's document stream with a one-document lookahead head
// used by the sorted merge.
type feed struct {
	cur   *storage.Cursor  // sequential mode: pulled lazily
	ch    chan []*bson.Doc // parallel mode: filled by a pump goroutine
	batch []*bson.Doc
	pos   int
	head  *bson.Doc
	has   bool
}

func (f *feed) next() (*bson.Doc, bool) {
	for {
		if f.pos < len(f.batch) {
			d := f.batch[f.pos]
			f.pos++
			return d, true
		}
		if f.ch != nil {
			b, ok := <-f.ch
			if !ok {
				return nil, false
			}
			f.batch, f.pos = b, 0
			continue
		}
		if f.cur == nil {
			return nil, false
		}
		// NextBatch reuses the cursor's internal buffer; the feed consumes it
		// fully before asking for the next one.
		b := f.cur.NextBatch()
		if len(b) == 0 {
			_ = f.cur.Close()
			f.cur = nil
			return nil, false
		}
		f.batch, f.pos = b, 0
	}
}

// pump streams one shard cursor into a channel until the cursor is
// exhausted or the merge cursor is closed.
func pump(cur *storage.Cursor, ch chan<- []*bson.Doc, done <-chan struct{}) {
	defer close(ch)
	defer cur.Close()
	for {
		b := cur.NextBatch()
		if len(b) == 0 {
			return
		}
		cp := append([]*bson.Doc(nil), b...)
		select {
		case ch <- cp:
		case <-done:
			return
		}
	}
}

// FindCursor routes a query and returns a streaming merge cursor over the
// targeted shards' cursors. Skip and limit are applied at the merge; each
// shard cursor is opened with limit skip+limit so no shard produces more
// than the merge can consume.
func (r *Router) FindCursor(db, coll string, filter *bson.Doc, opts storage.FindOptions) (*Cursor, error) {
	meta := r.config.Metadata(namespace(db, coll))
	targets, targeted := r.targetShards(meta, filter)

	shardOpts := opts
	shardOpts.Skip = 0
	if opts.Limit > 0 {
		shardOpts.Limit = opts.Limit + opts.Skip
	}

	curs := make([]*storage.Cursor, len(targets))
	closeAll := func() {
		for _, c := range curs {
			if c != nil {
				_ = c.Close()
			}
		}
	}
	if r.opts.Parallel {
		var wg sync.WaitGroup
		errs := make([]error, len(targets))
		for i, name := range targets {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				r.remoteCall()
				curs[i], errs[i] = r.Shard(name).Database(db).FindCursor(coll, filter, shardOpts)
			}(i, name)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("mongos: shard %s: %w", targets[i], err)
			}
		}
	} else {
		for i, name := range targets {
			r.remoteCall()
			cur, err := r.Shard(name).Database(db).FindCursor(coll, filter, shardOpts)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("mongos: shard %s: %w", name, err)
			}
			curs[i] = cur
		}
	}
	r.recordRouting(targeted, 0)

	mc := &Cursor{r: r, sort: opts.Sort, skipLeft: opts.Skip, limitLeft: -1}
	if opts.Limit > 0 {
		mc.limitLeft = opts.Limit
	}
	if r.opts.Parallel {
		mc.done = make(chan struct{})
		for _, cur := range curs {
			ch := make(chan []*bson.Doc, 2)
			go pump(cur, ch, mc.done)
			mc.feeds = append(mc.feeds, &feed{ch: ch})
		}
	} else {
		for _, cur := range curs {
			mc.feeds = append(mc.feeds, &feed{cur: cur})
		}
	}
	return mc, nil
}

// Next returns the next merged document.
func (c *Cursor) Next() (*bson.Doc, bool) {
	if c.closed || c.finished {
		return nil, false
	}
	if c.limitLeft == 0 {
		c.finish()
		return nil, false
	}
	for {
		d, ok := c.pull()
		if !ok {
			c.finish()
			return nil, false
		}
		c.pulled++
		if c.skipLeft > 0 {
			c.skipLeft--
			continue
		}
		if c.limitLeft > 0 {
			c.limitLeft--
		}
		return d, true
	}
}

// pull produces the next document in merge order, before skip/limit.
func (c *Cursor) pull() (*bson.Doc, bool) {
	if len(c.sort) == 0 {
		for c.seq < len(c.feeds) {
			if d, ok := c.feeds[c.seq].next(); ok {
				return d, true
			}
			c.seq++
		}
		return nil, false
	}
	if !c.inited {
		c.inited = true
		for _, f := range c.feeds {
			f.head, f.has = f.next()
		}
	}
	best := -1
	for i, f := range c.feeds {
		if !f.has {
			continue
		}
		if best == -1 || c.sort.Compare(f.head, c.feeds[best].head) < 0 {
			best = i
		}
	}
	if best == -1 {
		return nil, false
	}
	d := c.feeds[best].head
	c.feeds[best].head, c.feeds[best].has = c.feeds[best].next()
	return d, true
}

// Err returns the error that terminated the stream, if any. Shard storage
// cursors cannot fail mid-iteration today, so Err is always nil; it exists
// so the router cursor satisfies the shared iterator contract.
func (c *Cursor) Err() error { return nil }

// Close stops the shard pumps, closes the shard cursors and flushes the
// routing statistics. Safe to call multiple times.
func (c *Cursor) Close() { c.finish() }

// All drains the remaining documents and closes the cursor.
func (c *Cursor) All() ([]*bson.Doc, error) {
	var out []*bson.Doc
	for {
		d, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	err := c.Err()
	c.Close()
	return out, err
}

func (c *Cursor) finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.closed = true
	if c.done != nil {
		close(c.done)
		c.done = nil
	}
	for _, f := range c.feeds {
		if f.cur != nil {
			_ = f.cur.Close()
			f.cur = nil
		}
		if f.ch != nil {
			// Unblock and wait out the pump; the channel closes when it exits.
			for range f.ch {
			}
			f.ch = nil
		}
		f.batch = nil
	}
	c.r.mu.Lock()
	c.r.stats.DocsMerged += c.pulled
	c.r.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Streaming aggregation

// concatIter concatenates per-shard aggregation iterators, optionally
// prefetching each shard's stream on a goroutine, and counts the documents
// it merges into the router's routing statistics.
type concatIter struct {
	r     *Router
	names []string
	its   []aggregate.Iterator // sequential mode
	chans []chan []*bson.Doc   // parallel mode
	errs  []error              // written by pump i before chans[i] closes
	done  chan struct{}

	idx      int
	batch    []*bson.Doc
	pos      int
	err      error
	pulled   int64
	finished bool
}

func (it *concatIter) Next() (*bson.Doc, bool) {
	if it.finished {
		return nil, false
	}
	for {
		if it.pos < len(it.batch) {
			d := it.batch[it.pos]
			it.pos++
			it.pulled++
			return d, true
		}
		if it.idx >= len(it.names) {
			it.finish()
			return nil, false
		}
		if it.chans != nil {
			b, ok := <-it.chans[it.idx]
			if ok {
				it.batch, it.pos = b, 0
				continue
			}
			if err := it.errs[it.idx]; err != nil {
				it.err = fmt.Errorf("mongos: shard %s: %w", it.names[it.idx], err)
				it.finish()
				return nil, false
			}
			it.idx++
			continue
		}
		src := it.its[it.idx]
		d, ok := src.Next()
		if ok {
			it.pulled++
			return d, true
		}
		if err := src.Err(); err != nil {
			it.err = fmt.Errorf("mongos: shard %s: %w", it.names[it.idx], err)
			it.finish()
			return nil, false
		}
		src.Close()
		it.idx++
	}
}

func (it *concatIter) Err() error { return it.err }
func (it *concatIter) Close()     { it.finish() }

func (it *concatIter) finish() {
	if it.finished {
		return
	}
	it.finished = true
	if it.done != nil {
		close(it.done)
		it.done = nil
	}
	for _, src := range it.its {
		src.Close()
	}
	for _, ch := range it.chans {
		for range ch {
		}
	}
	it.batch = nil
	it.r.mu.Lock()
	it.r.stats.DocsMerged += it.pulled
	it.r.mu.Unlock()
}

// pumpIter streams an aggregation iterator into a channel in small batches.
// Any iteration error is stored in *errp before the channel closes, so the
// consumer observes it after draining.
func pumpIter(src aggregate.Iterator, ch chan<- []*bson.Doc, done <-chan struct{}, errp *error) {
	defer close(ch)
	defer src.Close()
	const pumpBatch = 64
	for {
		batch := make([]*bson.Doc, 0, pumpBatch)
		for len(batch) < pumpBatch {
			d, ok := src.Next()
			if !ok {
				*errp = src.Err()
				if len(batch) > 0 {
					select {
					case ch <- batch:
					case <-done:
					}
				}
				return
			}
			batch = append(batch, d)
		}
		select {
		case ch <- batch:
		case <-done:
			return
		}
	}
}

// AggregateCursor routes an aggregation pipeline and returns a streaming
// iterator over its results: the per-document prefix of the pipeline runs on
// each targeted shard behind a shard-side cursor, the shard streams are
// concatenated (prefetched concurrently when Options.Parallel is set), and
// the remainder of the pipeline consumes the concatenation incrementally on
// the router, with $out writing to the primary shard.
func (r *Router) AggregateCursor(db, coll string, stages []*bson.Doc) (aggregate.Iterator, error) {
	pipeline, err := aggregate.Parse(stages)
	if err != nil {
		return nil, err
	}
	shardPart, _ := pipeline.Split()
	cut := shardPart.Len()
	shardStages := stages[:cut]
	mergeStages := stages[cut:]

	// Targeting uses the leading $match stage when the pipeline starts with
	// one, mirroring how the router can only avoid a broadcast when the match
	// pins the shard key.
	meta := r.config.Metadata(namespace(db, coll))
	var filter *bson.Doc
	if len(stages) > 0 {
		if m, ok := stages[0].Get("$match"); ok {
			if md, ok := m.(*bson.Doc); ok {
				filter = md
			}
		}
	}
	targets, targeted := r.targetShards(meta, filter)

	openShard := func(name string) (aggregate.Iterator, error) {
		s := r.Shard(name)
		if len(shardStages) == 0 {
			cur, err := s.Database(db).Collection(coll).FindCursor(nil, storage.FindOptions{})
			if err != nil {
				return nil, err
			}
			return mongod.Iter(cur), nil
		}
		return s.Database(db).AggregateCursor(coll, shardStages)
	}

	its := make([]aggregate.Iterator, len(targets))
	closeAll := func() {
		for _, it := range its {
			if it != nil {
				it.Close()
			}
		}
	}
	if r.opts.Parallel {
		var wg sync.WaitGroup
		errs := make([]error, len(targets))
		for i, name := range targets {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				r.remoteCall()
				its[i], errs[i] = openShard(name)
			}(i, name)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("mongos: shard %s: %w", targets[i], err)
			}
		}
	} else {
		for i, name := range targets {
			r.remoteCall()
			it, err := openShard(name)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("mongos: shard %s: %w", name, err)
			}
			its[i] = it
		}
	}
	r.recordRouting(targeted, 0)

	concat := &concatIter{r: r, names: targets}
	if r.opts.Parallel {
		concat.done = make(chan struct{})
		concat.chans = make([]chan []*bson.Doc, len(its))
		concat.errs = make([]error, len(its))
		for i, it := range its {
			ch := make(chan []*bson.Doc, 2)
			concat.chans[i] = ch
			go pumpIter(it, ch, concat.done, &concat.errs[i])
		}
	} else {
		concat.its = its
	}

	if len(mergeStages) == 0 {
		return concat, nil
	}
	mergePipeline, err := aggregate.Parse(mergeStages)
	if err != nil {
		concat.Close()
		return nil, err
	}
	primary := r.PrimaryShard()
	if primary == nil {
		concat.Close()
		return nil, fmt.Errorf("mongos: no shards registered")
	}
	return mergePipeline.RunIter(concat, primary.Database(db).Env()), nil
}
