package mongos

import (
	"errors"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/replset"
	"docstore/internal/sharding"
	"docstore/internal/storage"
)

func newReplicaShard(t *testing.T, names ...string) *replset.ReplicaSet {
	t.Helper()
	members := make([]*mongod.Server, len(names))
	for i, n := range names {
		members[i] = mongod.NewServer(mongod.Options{Name: n})
	}
	rs, err := replset.New("rs-"+names[0], members...)
	if err != nil {
		t.Fatal(err)
	}
	rs.StartReplication()
	t.Cleanup(rs.Close)
	return rs
}

func TestReplicaShardWriteConcernThreading(t *testing.T) {
	rs := newReplicaShard(t, "A", "B", "C")
	r := NewRouter(sharding.NewConfigServer(), Options{})
	r.AddReplicaShard("rs0", rs)

	// Scalar inserts route through the replica set: the write lands in its
	// oplog, not just on the primary.
	if _, err := r.Insert("db", "c", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	if rs.OplogLength() != 1 {
		t.Fatalf("oplog length = %d after routed insert, want 1", rs.OplogLength())
	}

	// A majority bulk through the router blocks until a quorum applied it.
	res := r.BulkWrite("db", "c", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, 2)),
	}, storage.BulkOptions{WriteConcern: storage.WriteConcern{Majority: true}})
	if res.DurabilityErr != nil {
		t.Fatalf("majority bulk: %v", res.DurabilityErr)
	}
	applied := 0
	for _, m := range rs.Members() {
		if m.Database("db").Collection("c").FindID(int64(2)) != nil {
			applied++
		}
	}
	if applied < 2 {
		t.Fatalf("majority bulk visible on %d member(s), want >= 2", applied)
	}

	// Updates and deletes carry the concern through their options structs.
	if _, err := r.UpdateWithOptions("db", "c",
		query.UpdateSpec{Query: bson.D(bson.IDKey, 2), Update: bson.D("$set", bson.D("x", 1))},
		storage.BulkOptions{WriteConcern: storage.WriteConcern{W: 3}}); err != nil {
		t.Fatalf("w:3 update: %v", err)
	}
	for _, m := range rs.Members() {
		doc := m.Database("db").Collection("c").FindID(int64(2))
		if doc == nil || doc.GetOr("x", nil) == nil {
			t.Fatalf("w:3 update not applied on member %s", m.Name())
		}
	}

	// Quorum loss surfaces as the replica set's structured error.
	if err := rs.Kill("B"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Kill("C"); err != nil {
		t.Fatal(err)
	}
	res = r.BulkWrite("db", "c", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, 3)),
	}, storage.BulkOptions{WriteConcern: storage.WriteConcern{Majority: true}})
	var wce *storage.WriteConcernError
	if !errors.As(res.DurabilityErr, &wce) || wce.Reason != "quorum unreachable" {
		t.Fatalf("degraded routed bulk = %v, want quorum-unreachable WriteConcernError", res.DurabilityErr)
	}
}

func TestReplicaShardShardedBulk(t *testing.T) {
	rsA := newReplicaShard(t, "A1", "A2", "A3")
	rsB := newReplicaShard(t, "B1", "B2", "B3")
	r := NewRouter(sharding.NewConfigServer(), Options{})
	r.AddReplicaShard("s0", rsA)
	r.AddReplicaShard("s1", rsB)
	if _, err := r.EnableSharding("db", "c", bson.D("k", 1), 1<<20); err != nil {
		t.Fatal(err)
	}

	ops := make([]storage.WriteOp, 0, 40)
	for i := 0; i < 40; i++ {
		ops = append(ops, storage.InsertWriteOp(bson.D(bson.IDKey, i, "k", i)))
	}
	res := r.BulkWrite("db", "c", ops, storage.BulkOptions{
		WriteConcern: storage.WriteConcern{Majority: true},
	})
	if err := res.FirstError(); err != nil {
		t.Fatalf("sharded majority bulk: %v", err)
	}
	if res.Inserted != 40 {
		t.Fatalf("inserted %d, want 40", res.Inserted)
	}
	// Every sub-batch went through its replica set's oplog.
	if rsA.OplogLength() == 0 && rsB.OplogLength() == 0 {
		t.Fatal("no replica shard logged the routed sub-batches")
	}
	total, err := r.Count("db", "c", nil)
	if err != nil || total != 40 {
		t.Fatalf("routed count = %d, %v", total, err)
	}
}
