package mongos

import (
	"sync/atomic"

	"docstore/internal/bson"
	"docstore/internal/metrics"
)

// shardCounters is one shard's dispatch health, updated lock-free on the
// scatter path (unordered batches dispatch to shards from parallel
// goroutines).
type shardCounters struct {
	inFlight atomic.Int64 // dispatches currently executing on the shard
	calls    atomic.Int64 // write dispatches issued
	errors   atomic.Int64 // dispatches whose batch reported any failure
}

// ShardHealth is one shard's dispatch-health snapshot.
type ShardHealth struct {
	Shard    string
	InFlight int64
	Calls    int64
	Errors   int64
}

// healthFor returns the shard's counters, nil for an unknown shard.
func (r *Router) healthFor(name string) *shardCounters {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.health[name]
}

// ShardHealth snapshots every shard's dispatch health in registration
// order: how many writes are in flight on it right now, how many it has
// served, and how many came back with failures.
func (r *Router) ShardHealth() []ShardHealth {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ShardHealth, 0, len(r.order))
	for _, name := range r.order {
		hc := r.health[name]
		if hc == nil {
			continue
		}
		out = append(out, ShardHealth{
			Shard:    name,
			InFlight: hc.inFlight.Load(),
			Calls:    hc.calls.Load(),
			Errors:   hc.errors.Load(),
		})
	}
	return out
}

// HealthDocs aggregates replication health from every replica-backed shard,
// tagging each member document with its shard name: the serverStatus "repl"
// section for a routed deployment. Plain shards contribute nothing. The
// method gives *Router the same replication-health face *replset.ReplicaSet
// has, so the wire layer's interface assertion works behind a router too.
func (r *Router) HealthDocs() []*bson.Doc {
	type memberHealthSource interface {
		HealthDocs() []*bson.Doc
	}
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	replicas := make([]ReplicaShard, len(names))
	for i, n := range names {
		replicas[i] = r.replicas[n]
	}
	r.mu.RUnlock()
	var out []*bson.Doc
	for i, rep := range replicas {
		hs, ok := rep.(memberHealthSource)
		if !ok {
			continue
		}
		for _, doc := range hs.HealthDocs() {
			doc.Set("shard", names[i])
			out = append(out, doc)
		}
	}
	return out
}

// HealthGauges renders ShardHealth as labeled gauges, one series per shard,
// for registration as a polled gauge source on a metrics registry. The
// calls/errors counts are cumulative but export without the `_total` suffix:
// the registry renders polled gauge sources with `# TYPE ... gauge`, and a
// `_total` gauge would contradict the Prometheus naming convention that
// tooling infers counter semantics from.
func (r *Router) HealthGauges() []metrics.Gauge {
	health := r.ShardHealth()
	out := make([]metrics.Gauge, 0, 3*len(health))
	for _, h := range health {
		labels := []string{"shard", h.Shard}
		out = append(out,
			metrics.Gauge{Name: "docstore_mongos_shard_in_flight", Value: h.InFlight, Labels: labels},
			metrics.Gauge{Name: "docstore_mongos_shard_calls", Value: h.Calls, Labels: labels},
			metrics.Gauge{Name: "docstore_mongos_shard_errors", Value: h.Errors, Labels: labels},
		)
	}
	return out
}
