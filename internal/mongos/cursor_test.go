package mongos

import (
	"fmt"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// shardedFixture builds a router over three shards with a hash-sharded
// collection spread across them.
func shardedFixture(t *testing.T, opts Options, docs int) *Router {
	t.Helper()
	r := newTestRouter(t, opts)
	if _, err := r.EnableSharding("db", "events", bson.D("k", "hashed"), 16<<10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < docs; i++ {
		doc := bson.D(bson.IDKey, i, "k", i, "g", i%11, "name", fmt.Sprintf("ev-%05d", i))
		if _, err := r.Insert("db", "events", doc); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestRouterFindCursorMatchesFind asserts the streaming merge cursor and the
// materializing Find return the same documents in the same order, across
// sorts, skip/limit and both scatter modes.
func TestRouterFindCursorMatchesFind(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		r := shardedFixture(t, Options{Parallel: parallel}, 500)
		cases := []struct {
			name   string
			filter *bson.Doc
			opts   storage.FindOptions
		}{
			{"broadcast", bson.D("g", 4), storage.FindOptions{}},
			{"targeted", bson.D("k", 123), storage.FindOptions{}},
			{"sorted", bson.D("g", bson.D("$lt", 5)), storage.FindOptions{Sort: query.MustParseSort(bson.D("name", 1))}},
			{"sorted desc", nil, storage.FindOptions{Sort: query.MustParseSort(bson.D("name", -1))}},
			{"sorted+skip+limit", nil, storage.FindOptions{Sort: query.MustParseSort(bson.D("name", 1)), Skip: 20, Limit: 50}},
			{"unsorted+limit", nil, storage.FindOptions{Limit: 33}},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("parallel=%v/%s", parallel, tc.name), func(t *testing.T) {
				want, err := r.Find("db", "events", tc.filter, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				cur, err := r.FindCursor("db", "events", tc.filter, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cur.All()
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("cursor returned %d docs, Find returned %d", len(got), len(want))
				}
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("doc %d differs:\n got  %v\n want %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestRouterAggregateCursorMatchesAggregate checks the streamed shard
// concatenation plus router-side merge pipeline against the slice path.
func TestRouterAggregateCursorMatchesAggregate(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		r := shardedFixture(t, Options{Parallel: parallel}, 400)
		pipelines := map[string][]*bson.Doc{
			"match+group+sort": {
				bson.D("$match", bson.D("g", bson.D("$lt", 6))),
				bson.D("$group", bson.D(bson.IDKey, "$g", "n", bson.D("$sum", 1))),
				bson.D("$sort", bson.D(bson.IDKey, 1)),
			},
			"project only": {
				bson.D("$project", bson.D("name", 1)),
			},
			"group+sort+limit": {
				bson.D("$group", bson.D(bson.IDKey, "$g", "total", bson.D("$sum", "$k"))),
				bson.D("$sort", bson.D("total", -1)),
				bson.D("$limit", 3),
			},
		}
		for name, stages := range pipelines {
			t.Run(fmt.Sprintf("parallel=%v/%s", parallel, name), func(t *testing.T) {
				want, err := r.Aggregate("db", "events", stages)
				if err != nil {
					t.Fatal(err)
				}
				it, err := r.AggregateCursor("db", "events", stages)
				if err != nil {
					t.Fatal(err)
				}
				var got []*bson.Doc
				for {
					d, ok := it.Next()
					if !ok {
						break
					}
					got = append(got, d)
				}
				if err := it.Err(); err != nil {
					t.Fatal(err)
				}
				it.Close()
				if len(got) != len(want) {
					t.Fatalf("cursor returned %d docs, Aggregate returned %d", len(got), len(want))
				}
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("doc %d differs:\n got  %v\n want %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestRouterCursorEarlyClose verifies closing a merge cursor mid-stream
// shuts down the parallel prefetch pumps without leaking or deadlocking.
func TestRouterCursorEarlyClose(t *testing.T) {
	r := shardedFixture(t, Options{Parallel: true}, 600)
	for i := 0; i < 10; i++ {
		cur, err := r.FindCursor("db", "events", nil, storage.FindOptions{BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := cur.Next(); !ok {
			t.Fatal("expected at least one document")
		}
		cur.Close()
		if _, ok := cur.Next(); ok {
			t.Fatal("Next succeeded after Close")
		}
	}
}

// TestStressParallelRouterFind runs concurrent Router.Find and FindCursor
// calls with Options.Parallel enabled while writers keep inserting — the
// scatter-gather race surface the -race run is meant to cover.
func TestStressParallelRouterFind(t *testing.T) {
	r := shardedFixture(t, Options{Parallel: true}, 300)
	const (
		readers = 6
		writers = 2
		ops     = 100
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				id := 10000 + w*ops + i
				doc := bson.D(bson.IDKey, id, "k", id, "g", id%11, "name", fmt.Sprintf("ev-%05d", id))
				if _, err := r.Insert("db", "events", doc); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if i%2 == 0 {
					docs, err := r.Find("db", "events", bson.D("g", i%11), storage.FindOptions{})
					if err != nil {
						t.Errorf("find: %v", err)
						return
					}
					_ = docs
				} else {
					cur, err := r.FindCursor("db", "events", nil, storage.FindOptions{BatchSize: 32, Limit: 64})
					if err != nil {
						t.Errorf("cursor: %v", err)
						return
					}
					if _, err := cur.All(); err != nil {
						t.Errorf("drain: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, name := range r.ShardNames() {
		total += r.Shard(name).Database("db").Collection("events").Count()
	}
	if total != 300+writers*ops {
		t.Fatalf("cluster holds %d docs, want %d", total, 300+writers*ops)
	}
}
