package mongos

import (
	"fmt"
	"sort"
	"sync"

	"docstore/internal/bson"
	"docstore/internal/sharding"
	"docstore/internal/storage"
)

// subBatch is the portion of a bulk destined for one shard, with the
// original batch positions of its ops so per-shard results merge back with
// correct index attribution.
type subBatch struct {
	shard   string
	ops     []storage.WriteOp
	indices []int
}

// bulkTargets resolves the shards one bulk op must reach. Inserts always
// route to exactly one shard through the chunk map; updates and deletes
// reuse the query-routing logic of targetShards. Routing is read-only —
// chunk accounting happens in recordInserts just before a sub-batch is
// dispatched, so ops an ordered batch never reaches are never recorded.
func (r *Router) bulkTargets(meta *sharding.CollectionMetadata, op *storage.WriteOp) []string {
	switch op.Kind {
	case storage.InsertOp:
		if op.Doc == nil {
			// Shape errors surface from the storage engine with the right op
			// index; route the op anywhere.
			return r.ShardNames()[:1]
		}
		shard, _ := meta.ShardForValue(meta.Key.ValueOf(op.Doc))
		return []string{shard}
	case storage.UpdateOp:
		targets, _ := r.targetShards(meta, op.Update.Query)
		return targets
	default: // storage.DeleteOp
		targets, _ := r.targetShards(meta, op.Filter)
		return targets
	}
}

// recordInserts accounts a sub-batch's attempted insert ops in the chunk
// map (feeding chunk-split decisions, exactly as Insert does) after
// dispatch, so ops a stopped ordered batch never reached are never
// recorded. Splits keep both halves on the chunk's shard, so recording
// after routing cannot invalidate the shard the ops were grouped under.
func recordInserts(meta *sharding.CollectionMetadata, ops []storage.WriteOp) {
	for i := range ops {
		if ops[i].Kind == storage.InsertOp && ops[i].Doc != nil {
			meta.RecordInsert(meta.Key.ValueOf(ops[i].Doc), bson.EncodedSize(ops[i].Doc))
		}
	}
}

// BulkWrite routes a mixed batch of writes. For an unsharded collection the
// whole batch is one round-trip to the primary shard. For a sharded
// collection the batch is partitioned by target shard via the chunk map and
// dispatched as per-shard sub-batches — one round-trip per shard instead of
// one per document; unordered sub-batches fan out in parallel goroutines.
// Ordered mode preserves cross-op ordering the way the real mongos does:
// maximal contiguous runs targeting the same single shard dispatch
// sequentially, stopping at the first failure. Ops whose filter spans
// several shards (broadcast updates/deletes) fall back to the scalar routing
// path in place.
func (r *Router) BulkWrite(db, coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	var res storage.BulkResult
	if len(ops) == 0 {
		return res
	}
	meta := r.config.Metadata(namespace(db, coll))
	if meta == nil {
		names := r.ShardNames()
		if len(names) == 0 {
			res.DurabilityErr = fmt.Errorf("mongos: no shards registered")
			return res
		}
		r.remoteCall()
		r.recordRouting(true, 0)
		return r.shardBulkWrite(names[0], db, coll, ops, opts)
	}
	if opts.Ordered {
		res = r.bulkOrdered(db, coll, meta, ops, opts)
	} else {
		res = r.bulkUnordered(db, coll, meta, ops, opts)
	}
	sort.Slice(res.Errors, func(i, j int) bool { return res.Errors[i].Index < res.Errors[j].Index })
	return res
}

// bulkUnordered partitions the whole batch by target shard and dispatches
// every sub-batch concurrently, one goroutine (and one simulated round-trip)
// per shard. Multi-shard ops run through the scalar path afterwards.
func (r *Router) bulkUnordered(db, coll string, meta *sharding.CollectionMetadata, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	var res storage.BulkResult
	groups := make(map[string]*subBatch)
	var scalars []int
	for i := range ops {
		targets := r.bulkTargets(meta, &ops[i])
		if len(targets) != 1 {
			scalars = append(scalars, i)
			continue
		}
		sb, ok := groups[targets[0]]
		if !ok {
			sb = &subBatch{shard: targets[0]}
			groups[targets[0]] = sb
		}
		sb.ops = append(sb.ops, ops[i])
		sb.indices = append(sb.indices, i)
	}

	subs := make([]*subBatch, 0, len(groups))
	for _, sb := range groups {
		subs = append(subs, sb)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].shard < subs[j].shard })

	results := make([]storage.BulkResult, len(subs))
	var wg sync.WaitGroup
	for si, sb := range subs {
		wg.Add(1)
		go func(si int, sb *subBatch) {
			defer wg.Done()
			r.remoteCall()
			results[si] = r.shardBulkWrite(sb.shard, db, coll, sb.ops, opts)
			recordInserts(meta, sb.ops[:results[si].Attempted])
		}(si, sb)
	}
	wg.Wait()
	for si, sb := range subs {
		res.Merge(results[si], sb.indices, len(ops))
	}
	for _, i := range scalars {
		r.applyScalar(db, coll, &ops[i], i, &res, len(ops), opts)
	}
	// The grouped dispatch is one logical routed operation; scalar ops
	// already record themselves inside Update/Delete.
	if len(subs) > 0 {
		r.recordRouting(len(scalars) == 0, 0)
	}
	return res
}

// bulkOrdered walks the batch in order, dispatching each maximal contiguous
// run of same-shard ops as one sub-batch and stopping at the first failure.
func (r *Router) bulkOrdered(db, coll string, meta *sharding.CollectionMetadata, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	var res storage.BulkResult
	targeted := true
	runs := 0
	i := 0
	targets := r.bulkTargets(meta, &ops[0])
	for i < len(ops) {
		if len(targets) != 1 {
			targeted = false
			err := r.applyScalar(db, coll, &ops[i], i, &res, len(ops), opts)
			i++
			if err != nil {
				break
			}
			if i < len(ops) {
				targets = r.bulkTargets(meta, &ops[i])
			}
			continue
		}
		shard := targets[0]
		j := i + 1
		for j < len(ops) {
			targets = r.bulkTargets(meta, &ops[j])
			if len(targets) != 1 || targets[0] != shard {
				break
			}
			j++
		}
		indices := make([]int, j-i)
		for k := range indices {
			indices[k] = i + k
		}
		r.remoteCall()
		runs++
		subRes := r.shardBulkWrite(shard, db, coll, ops[i:j], opts)
		recordInserts(meta, ops[i:i+subRes.Attempted])
		res.Merge(subRes, indices, len(ops))
		if len(res.Errors) > 0 {
			break
		}
		i = j
	}
	// As in the unordered path, only the grouped runs count as one routed
	// operation; scalar fallbacks record themselves.
	if runs > 0 {
		r.recordRouting(targeted, 0)
	}
	return res
}

// applyScalar executes one multi-shard op through the router's scalar
// update/delete semantics (sequential shard visits, first-match stop for
// non-multi ops) and folds the outcome into res. When the batch carries an
// acknowledgement contract ({j: true} or a write concern), the per-shard
// calls go through one-op sub-batches instead of the plain scalar paths —
// which cannot carry a writeConcern — so the contract reaches every shard
// the broadcast touches.
func (r *Router) applyScalar(db, coll string, op *storage.WriteOp, i int, res *storage.BulkResult, total int, opts storage.BulkOptions) error {
	res.Attempted++
	switch op.Kind {
	case storage.UpdateOp:
		ur, err := r.UpdateWithOptions(db, coll, op.Update, opts)
		res.Matched += ur.Matched
		res.Modified += ur.Modified
		if ur.UpsertedID != nil {
			res.Upserted++
			if res.UpsertedIDs == nil {
				res.UpsertedIDs = make([]any, total)
			}
			res.UpsertedIDs[i] = ur.UpsertedID
		}
		if err != nil {
			res.Errors = append(res.Errors, storage.BulkError{Index: i, Err: err})
			return err
		}
	case storage.DeleteOp:
		n, err := r.DeleteWithOptions(db, coll, op.Filter, op.Multi, opts)
		res.Deleted += n
		if err != nil {
			res.Errors = append(res.Errors, storage.BulkError{Index: i, Err: err})
			return err
		}
	default:
		// Mirror the storage engine so both Store adapters reject the
		// same malformed op the same way.
		err := fmt.Errorf("mongos: unknown bulk op kind %d", int(op.Kind))
		res.Errors = append(res.Errors, storage.BulkError{Index: i, Err: err})
		return err
	}
	return nil
}
