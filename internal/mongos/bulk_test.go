package mongos

import (
	"testing"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/sharding"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

func shardCounts(r *Router, db, coll string) map[string]int {
	out := make(map[string]int)
	for _, name := range r.ShardNames() {
		out[name] = r.Shard(name).Database(db).Collection(coll).Count()
	}
	return out
}

// TestBulkWriteUnshardedSingleRoundTrip routes a whole mixed bulk to the
// primary shard in one shard call.
func TestBulkWriteUnshardedSingleRoundTrip(t *testing.T) {
	r := newTestRouter(t, Options{})
	r.ResetStats()
	res := r.BulkWrite("db", "plain", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, 1, "v", 1)),
		storage.InsertWriteOp(bson.D(bson.IDKey, 2, "v", 2)),
		storage.UpdateWriteOp(query.UpdateSpec{Query: bson.D(bson.IDKey, 1), Update: bson.D("$set", bson.D("v", 10))}),
		storage.DeleteWriteOp(bson.D(bson.IDKey, 2), false),
	}, storage.BulkOptions{})
	if res.FirstError() != nil {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.Inserted != 2 || res.Modified != 1 || res.Deleted != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := r.Stats().ShardCalls; got != 1 {
		t.Fatalf("shard calls = %d, want 1 round trip", got)
	}
	if got := r.Shard("Shard1").Database("db").Collection("plain").Count(); got != 1 {
		t.Fatalf("primary count = %d", got)
	}
}

// TestBulkWriteGroupedScatter checks that an unordered sharded bulk issues
// one shard call per owning shard — not one per document — and that inserted
// ids merge back under their original batch positions.
func TestBulkWriteGroupedScatter(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "sales", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	ops := make([]storage.WriteOp, 600)
	for i := range ops {
		ops[i] = storage.InsertWriteOp(bson.D(bson.IDKey, i, "k", i))
	}
	r.ResetStats()
	res := r.BulkWrite("db", "sales", ops, storage.BulkOptions{})
	if res.FirstError() != nil {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.Inserted != 600 || res.Attempted != 600 {
		t.Fatalf("result = %+v", res)
	}
	calls := r.Stats().ShardCalls
	if calls > int64(len(r.ShardNames())) {
		t.Fatalf("shard calls = %d, want at most one per shard", calls)
	}
	// Every shard owns part of the hashed key space at this cardinality.
	populated, total := 0, 0
	for _, n := range shardCounts(r, "db", "sales") {
		total += n
		if n > 0 {
			populated++
		}
	}
	if populated != 3 || total != 600 {
		t.Fatalf("distribution: populated=%d total=%d", populated, total)
	}
	// Original-index attribution: slot i carries doc i's _id.
	for i, id := range res.InsertedIDs {
		if id == nil || bson.Compare(id, bson.Normalize(i)) != 0 {
			t.Fatalf("InsertedIDs[%d] = %v", i, id)
		}
	}
}

// TestBulkWriteOrderedStopsAcrossShards verifies ordered mode: a failure in
// a mid-batch sub-batch prevents every later op from executing, even ops
// destined for other shards.
func TestBulkWriteOrderedStopsAcrossShards(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "sales", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	seed := make([]storage.WriteOp, 200)
	for i := range seed {
		seed[i] = storage.InsertWriteOp(bson.D(bson.IDKey, i, "k", i))
	}
	if res := r.BulkWrite("db", "sales", seed, storage.BulkOptions{}); res.FirstError() != nil {
		t.Fatal(res.FirstError())
	}

	ops := []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, 1000, "k", 1000)),
		storage.InsertWriteOp(bson.D(bson.IDKey, 0, "k", 0)), // duplicate _id on its shard
		storage.InsertWriteOp(bson.D(bson.IDKey, 1001, "k", 1001)),
		storage.InsertWriteOp(bson.D(bson.IDKey, 1002, "k", 1002)),
	}
	res := r.BulkWrite("db", "sales", ops, storage.BulkOptions{Ordered: true})
	if len(res.Errors) != 1 || res.Errors[0].Index != 1 {
		t.Fatalf("errors = %v", res.Errors)
	}
	total := 0
	for _, n := range shardCounts(r, "db", "sales") {
		total += n
	}
	// Op 0 ran; ops 2 and 3 must not have (they sit after the failure).
	if res.Inserted != 1 || total != 201 {
		t.Fatalf("ordered bulk ran past the failure: inserted=%d total=%d", res.Inserted, total)
	}

	// The same batch unordered inserts everything but the duplicate.
	unordered := []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, 2000, "k", 2000)),
		storage.InsertWriteOp(bson.D(bson.IDKey, 0, "k", 0)),
		storage.InsertWriteOp(bson.D(bson.IDKey, 2001, "k", 2001)),
	}
	res = r.BulkWrite("db", "sales", unordered, storage.BulkOptions{})
	if res.Inserted != 2 || len(res.Errors) != 1 || res.Errors[0].Index != 1 {
		t.Fatalf("unordered result = %+v", res)
	}
}

// TestBulkWriteOrderedStopDoesNotRecordUnreachedInserts pins the chunk-map
// accounting: inserts sitting after an ordered failure — destined for a
// different shard, so never dispatched — must not be recorded as chunk
// contents.
func TestBulkWriteOrderedStopDoesNotRecordUnreachedInserts(t *testing.T) {
	r := newTestRouter(t, Options{})
	meta, err := r.EnableSharding("db", "sales", bson.D("k", "hashed"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Probe the hashed key space for two keys owned by different shards.
	shardOf := func(k int) string {
		targets := r.bulkTargets(meta, &storage.WriteOp{Kind: storage.InsertOp, Doc: bson.D("k", k)})
		return targets[0]
	}
	kA := 0
	kB := -1
	for k := 1; k < 100; k++ {
		if shardOf(k) != shardOf(kA) {
			kB = k
			break
		}
	}
	if kB < 0 {
		t.Fatalf("no key pair spanning two shards in probe range")
	}
	if _, err := r.Insert("db", "sales", bson.D(bson.IDKey, "seed", "k", kA)); err != nil {
		t.Fatal(err)
	}
	recordedBefore := 0
	for _, n := range meta.DocCountByShard() {
		recordedBefore += n
	}

	res := r.BulkWrite("db", "sales", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, "seed", "k", kA)), // duplicate _id: fails on its shard
		storage.InsertWriteOp(bson.D(bson.IDKey, "other", "k", kB)),
	}, storage.BulkOptions{Ordered: true})
	if res.Inserted != 0 || len(res.Errors) != 1 || res.Errors[0].Index != 0 {
		t.Fatalf("result = %+v", res)
	}
	recordedAfter := 0
	for _, n := range meta.DocCountByShard() {
		recordedAfter += n
	}
	// Op 0 was dispatched (and recorded) but failed; op 1 was never reached
	// and must not appear in the chunk accounting.
	if recordedAfter != recordedBefore+1 {
		t.Fatalf("chunk map records %d docs, want %d: unreached insert was recorded",
			recordedAfter, recordedBefore+1)
	}
}

// TestBulkWriteOrderedStopMidRunRecordsOnlyAttempted pins the same
// accounting within one contiguous run: a range-sharded collection keeps
// every op in a single run, and a mid-run duplicate must stop the chunk
// accounting at the attempted prefix.
func TestBulkWriteOrderedStopMidRunRecordsOnlyAttempted(t *testing.T) {
	r := newTestRouter(t, Options{})
	meta, err := r.EnableSharding("db", "sales", bson.D("k", 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert("db", "sales", bson.D(bson.IDKey, "seed", "k", 0)); err != nil {
		t.Fatal(err)
	}
	res := r.BulkWrite("db", "sales", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, "a", "k", 1)),
		storage.InsertWriteOp(bson.D(bson.IDKey, "seed", "k", 2)), // duplicate
		storage.InsertWriteOp(bson.D(bson.IDKey, "b", "k", 3)),    // never attempted
	}, storage.BulkOptions{Ordered: true})
	if res.Inserted != 1 || res.Attempted != 2 || len(res.Errors) != 1 || res.Errors[0].Index != 1 {
		t.Fatalf("result = %+v", res)
	}
	recorded := 0
	for _, n := range meta.DocCountByShard() {
		recorded += n
	}
	// seed + ops 0 and 1 (attempted, even though op 1 failed); op 2 must not
	// be recorded.
	if recorded != 3 {
		t.Fatalf("chunk map records %d docs, want 3", recorded)
	}
}

// TestBulkWriteSpansChunkSplit inserts a bulk big enough to split its range
// chunks mid-batch: every document must still land on the shard the chunk
// map assigns, the chunk invariants must hold, and nothing is lost.
func TestBulkWriteSpansChunkSplit(t *testing.T) {
	r := newTestRouter(t, Options{})
	// Range sharding with a tiny chunk size forces splits during the batch.
	meta, err := r.EnableSharding("db", "sales", bson.D("k", 1), 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(meta.Chunks()); got != 1 {
		t.Fatalf("pre-split chunks = %d", got)
	}
	ops := make([]storage.WriteOp, 1000)
	for i := range ops {
		ops[i] = storage.InsertWriteOp(bson.D(bson.IDKey, i, "k", i, "pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	}
	res := r.BulkWrite("db", "sales", ops, storage.BulkOptions{})
	if res.FirstError() != nil || res.Inserted != 1000 {
		t.Fatalf("result = %+v", res)
	}
	if got := len(meta.Chunks()); got < 2 {
		t.Fatalf("bulk did not span a chunk split: %d chunks", got)
	}
	if err := meta.Validate(); err != nil {
		t.Fatalf("chunk invariants broken after mid-bulk splits: %v", err)
	}
	total := 0
	for _, n := range shardCounts(r, "db", "sales") {
		total += n
	}
	if total != 1000 {
		t.Fatalf("stored %d of 1000 docs", total)
	}
	// Reads through the router still see every document.
	if n, err := r.Count("db", "sales", nil); err != nil || n != 1000 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

// TestBulkWriteBroadcastOpsFallBackToScalarPath mixes targeted inserts with
// a broadcast multi-update and multi-delete whose filters do not pin the
// shard key.
func TestBulkWriteBroadcastOpsFallBackToScalarPath(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "sales", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	ops := make([]storage.WriteOp, 0, 203)
	for i := 0; i < 200; i++ {
		ops = append(ops, storage.InsertWriteOp(bson.D(bson.IDKey, i, "k", i, "flag", i%2)))
	}
	ops = append(ops,
		storage.UpdateWriteOp(query.UpdateSpec{Query: bson.D("flag", 1), Update: bson.D("$set", bson.D("hot", true)), Multi: true}),
		storage.DeleteWriteOp(bson.D("flag", 0), true),
		storage.InsertWriteOp(bson.D(bson.IDKey, 999, "k", 999, "flag", 3)),
	)
	res := r.BulkWrite("db", "sales", ops, storage.BulkOptions{})
	if res.FirstError() != nil {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.Inserted != 201 || res.Matched != 100 || res.Modified != 100 || res.Deleted != 100 {
		t.Fatalf("result = %+v", res)
	}
	if n, _ := r.Count("db", "sales", nil); n != 101 {
		t.Fatalf("count after broadcast ops = %d", n)
	}
}

// TestRouterInsertManyEquivalence: the InsertMany wrapper must return ids
// aligned with the documents (each id is the stored _id of its document),
// exactly as a per-document Insert loop would.
func TestRouterInsertManyEquivalence(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "sales", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	docs := make([]*bson.Doc, 300)
	for i := range docs {
		docs[i] = bson.D("k", i, "v", i) // no _id: the engine assigns ObjectIDs
	}
	ids, err := r.InsertMany("db", "sales", docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(docs) {
		t.Fatalf("got %d ids for %d docs", len(ids), len(docs))
	}
	for i, d := range docs {
		id, ok := d.Get(bson.IDKey)
		if !ok {
			t.Fatalf("doc %d was not assigned an _id", i)
		}
		if bson.Compare(ids[i], id) != 0 {
			t.Fatalf("ids[%d] = %v, doc carries %v: order not preserved", i, ids[i], id)
		}
	}
	if n, _ := r.Count("db", "sales", nil); n != 300 {
		t.Fatalf("count = %d", n)
	}
}

// TestBulkWriteJournaledBroadcast checks the {j: true} escalation reaches
// broadcast (multi-shard) updates: shards run durable with SyncNone — the
// laziest policy — so only the journaled fallback path can have fsynced the
// records, which a recovery of each shard onto a fresh server then proves.
func TestBulkWriteJournaledBroadcast(t *testing.T) {
	cfg := sharding.NewConfigServer()
	r := NewRouter(cfg, Options{})
	dirs := map[string]string{"Shard1": t.TempDir(), "Shard2": t.TempDir()}
	for _, name := range []string{"Shard1", "Shard2"} {
		s := mongod.NewServer(mongod.Options{Name: name})
		if _, err := s.EnableDurability(mongod.Durability{Dir: dirs[name], Sync: wal.SyncNone}); err != nil {
			t.Fatal(err)
		}
		r.AddShard(name, s)
	}
	if _, err := r.EnableSharding("db", "c", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	ops := make([]storage.WriteOp, 0, 41)
	for i := 0; i < 40; i++ {
		ops = append(ops, storage.InsertWriteOp(bson.D(bson.IDKey, i, "k", i, "v", 0)))
	}
	// A multi-update with no shard-key filter broadcasts to every shard:
	// the scalar fallback the journaled path must cover.
	ops = append(ops, storage.UpdateWriteOp(query.UpdateSpec{
		Query: bson.D("v", 0), Update: bson.D("$set", bson.D("touched", true)), Multi: true,
	}))
	res := r.BulkWrite("db", "c", ops, storage.BulkOptions{Ordered: true, Journaled: true})
	if err := res.FirstError(); err != nil {
		t.Fatalf("bulk: %v", err)
	}
	if res.Inserted != 40 || res.Modified != 40 {
		t.Fatalf("result = %+v", res)
	}
	// Simulated crash of every shard: recover fresh servers from the dirs.
	total := 0
	for name, dir := range dirs {
		fresh := mongod.NewServer(mongod.Options{Name: name})
		if _, err := fresh.EnableDurability(mongod.Durability{Dir: dir, Sync: wal.SyncNone}); err != nil {
			t.Fatal(err)
		}
		coll := fresh.Database("db").Collection("c")
		n, err := coll.CountDocs(bson.D("touched", true))
		if err != nil {
			t.Fatal(err)
		}
		if n != coll.Count() {
			t.Fatalf("shard %s: broadcast update not durable: %d of %d touched", name, n, coll.Count())
		}
		total += coll.Count()
	}
	if total != 40 {
		t.Fatalf("recovered %d documents across shards, want 40", total)
	}
}
