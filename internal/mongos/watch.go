package mongos

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/mongod"
)

// pumpPoll is how long a shard pump parks in the shard stream's Next before
// re-checking for teardown; pump exit is normally driven by the shard
// subscription dying, so the poll only bounds teardown of an idle stream.
const pumpPoll = 250 * time.Millisecond

// Watch opens a cluster-wide change stream over the named collection (coll
// == "" watches the whole database): one per-shard stream on every shard,
// merged into a single ordered feed the way FindCursor merges shard cursors
// — one prefetching pump goroutine per shard. Per-shard event order (the
// shard's LSN order) is preserved; events of different shards interleave
// arbitrarily, which is the strongest guarantee independent per-shard logs
// admit. Every event carries its shard's name in Event.Shard.
//
// resumeAfter accepts the composite token of a previous cluster stream
// (ClusterStream.ResumeToken): each shard resumes exactly after its own
// per-shard position, so the merged stream is exactly-once end to end.
// Shards named in the token must still be registered; every shard requires
// durability (change streams tail the WAL).
func (r *Router) Watch(db, coll string, pipeline []*bson.Doc, resumeAfter string) (*ClusterStream, error) {
	comp, err := changestream.ParseCompositeToken(resumeAfter)
	if err != nil {
		return nil, err
	}
	names := r.ShardNames()
	if len(names) == 0 {
		return nil, fmt.Errorf("mongos: no shards registered")
	}
	registered := make(map[string]bool, len(names))
	for _, name := range names {
		// The composite token encodes shard names unescaped with "=" and
		// "/" as separators; a name containing either would render a
		// token the parser rejects — the stream's own token would be
		// unresumable. Refuse up front instead of failing at resume time.
		if strings.ContainsAny(name, "=/") {
			return nil, fmt.Errorf("mongos: shard name %q cannot appear in a composite resume token (contains '=' or '/')", name)
		}
		registered[name] = true
	}
	for name := range comp {
		if !registered[name] {
			return nil, fmt.Errorf("mongos: resume token names unknown shard %q", name)
		}
	}

	cs := &ClusterStream{
		out:      make(chan *changestream.Event, 4*len(names)),
		done:     make(chan struct{}),
		finished: make(chan struct{}),
		tokens:   changestream.CompositeToken{},
	}
	for _, name := range names {
		r.remoteCall()
		opts := mongod.WatchOptions{Pipeline: pipeline}
		if tok, ok := comp[name]; ok {
			opts.ResumeAfter = tok.String()
		}
		sub, err := r.Shard(name).Watch(db, coll, opts)
		if err != nil {
			cs.Close()
			return nil, fmt.Errorf("mongos: shard %s: %w", name, err)
		}
		start, err := changestream.ParseToken(sub.ResumeToken())
		if err != nil {
			sub.Close()
			cs.Close()
			return nil, fmt.Errorf("mongos: shard %s: %w", name, err)
		}
		// Seed the composite token with every shard's starting position, so
		// a resume before the shard's first event still covers it.
		cs.tokens[name] = start
		cs.subs = append(cs.subs, sub)
		cs.wg.Add(1)
		go cs.pump(name, sub)
	}
	go func() {
		cs.wg.Wait()
		close(cs.finished)
	}()
	return cs, nil
}

// ClusterStream is the merged cluster-wide change stream: one pump goroutine
// per shard forwards that shard's events, in order, into a shared channel.
// It implements changestream.Stream. Not safe for concurrent use by multiple
// consumer goroutines.
type ClusterStream struct {
	out      chan *changestream.Event
	done     chan struct{}
	finished chan struct{}
	wg       sync.WaitGroup

	mu     sync.Mutex
	tokens changestream.CompositeToken
	err    error
	subs   []changestream.Stream

	closeOnce sync.Once
}

var _ changestream.Stream = (*ClusterStream)(nil)

// pump forwards one shard's stream into the merge channel until the shard
// stream dies or the merged stream closes.
func (cs *ClusterStream) pump(name string, sub changestream.Stream) {
	defer cs.wg.Done()
	for {
		ev, err := sub.Next(pumpPoll)
		if err != nil {
			// A shard stream dying is terminal for the WHOLE merged
			// stream unless it is our own teardown closing the shard
			// subscriptions: silently continuing with the surviving
			// shards would present a feed that looks healthy while
			// omitting one shard's events forever — whether the shard
			// watcher overflowed (ErrSlowConsumer) or the shard itself
			// shut down (ErrClosed from the shard's broker). The consumer
			// resumes from the composite token.
			select {
			case <-cs.done: // our own Close/teardown: expected
			default:
				cs.mu.Lock()
				if cs.err == nil {
					cs.err = fmt.Errorf("mongos: shard %s: %w", name, err)
				}
				cs.mu.Unlock()
				cs.teardown()
			}
			return
		}
		if ev == nil {
			select {
			case <-cs.done:
				return
			default:
				continue
			}
		}
		// Events are shared with other watchers of the same shard broker:
		// stamp the shard on a copy, and drop the copied doc cache so the
		// rendering includes it.
		stamped := *ev
		stamped.Shard = name
		stamped.ResetDocCache()
		select {
		case cs.out <- &stamped:
		case <-cs.done:
			return
		}
	}
}

// Next implements changestream.Stream: it returns the next merged event,
// waiting up to maxWait, with (nil, nil) on a quiet stream. Once every pump
// has stopped, buffered events drain first and then the terminal error
// surfaces.
func (cs *ClusterStream) Next(maxWait time.Duration) (*changestream.Event, error) {
	select {
	case ev := <-cs.out:
		return cs.deliver(ev), nil
	default:
	}
	if maxWait <= 0 {
		select {
		case <-cs.finished:
			return nil, cs.streamErr()
		default:
			return nil, nil
		}
	}
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case ev := <-cs.out:
		return cs.deliver(ev), nil
	case <-cs.finished:
		select {
		case ev := <-cs.out:
			return cs.deliver(ev), nil
		default:
		}
		return nil, cs.streamErr()
	case <-timer.C:
		return nil, nil
	}
}

// deliver records the event's position in the composite token.
func (cs *ClusterStream) deliver(ev *changestream.Event) *changestream.Event {
	cs.mu.Lock()
	cs.tokens[ev.Shard] = ev.Token
	cs.mu.Unlock()
	return ev
}

func (cs *ClusterStream) streamErr() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.err != nil {
		return cs.err
	}
	return changestream.ErrClosed
}

// ResumeToken implements changestream.Stream: the composite per-shard token
// of everything delivered so far.
func (cs *ClusterStream) ResumeToken() string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.tokens.String()
}

// teardown closes every shard stream and stops the pumps without waiting
// them out; a failing pump calls it on itself, so it must not self-join.
func (cs *ClusterStream) teardown() {
	cs.closeOnce.Do(func() {
		close(cs.done)
		cs.mu.Lock()
		subs := cs.subs
		cs.subs = nil
		cs.mu.Unlock()
		for _, sub := range subs {
			sub.Close()
		}
	})
}

// Close implements changestream.Stream: it closes every shard stream, stops
// the pumps and waits them out, so no watcher goroutine or buffer outlives
// the merged stream.
func (cs *ClusterStream) Close() {
	cs.teardown()
	cs.wg.Wait()
}
