// Package mongos implements the query router of the sharded cluster: it
// routes inserts, finds, updates, deletes and aggregations to the shard (or
// shards) owning the relevant chunks, gathers partial results, and merges
// them — the mongos role of §2.1.3.1. Routing statistics distinguish targeted
// operations (the query pins the shard key, as in Query 50) from broadcast
// operations (multi-predicate analytical queries, as in Queries 7/21/46),
// which is the distinction §4.3 uses to explain the runtime results.
package mongos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/sharding"
	"docstore/internal/storage"
)

// Options configures a Router.
type Options struct {
	// NetworkLatency is the simulated one-way latency added to every remote
	// shard call. It stands in for the AWS inter-instance network of the
	// thesis' cluster; zero disables the simulation.
	NetworkLatency time.Duration
	// Parallel performs scatter-gather shard calls concurrently. The thesis'
	// Java client issues operations sequentially, so sequential is the
	// default; the ablation benchmarks flip this.
	Parallel bool
}

// RoutingStats counts how queries were routed.
type RoutingStats struct {
	TargetedQueries  int64
	BroadcastQueries int64
	ShardCalls       int64
	DocsMerged       int64
}

// ReplicaShard is a shard backed by a replica set instead of a single
// server: writes route through its quorum-aware bulk path so per-request
// write concerns survive the scatter, while reads keep hitting the primary.
// *replset.ReplicaSet implements it.
type ReplicaShard interface {
	BulkWrite(db, coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult
	Primary() *mongod.Server
}

// Router is the query router (mongos).
type Router struct {
	config *sharding.ConfigServer
	opts   Options

	mu       sync.RWMutex
	shards   map[string]*mongod.Server
	replicas map[string]ReplicaShard // shard name -> replica set, when the shard is replicated
	order    []string                // shard names in registration order; order[0] is the primary shard
	stats    RoutingStats
	health   map[string]*shardCounters // shard name -> dispatch-health counters
}

// NewRouter creates a router over a config server.
func NewRouter(config *sharding.ConfigServer, opts Options) *Router {
	return &Router{
		config:   config,
		opts:     opts,
		shards:   make(map[string]*mongod.Server),
		replicas: make(map[string]ReplicaShard),
		health:   make(map[string]*shardCounters),
	}
}

// AddShard registers a shard server with the router and the config server.
func (r *Router) AddShard(name string, server *mongod.Server) {
	r.mu.Lock()
	if _, exists := r.shards[name]; !exists {
		r.shards[name] = server
		r.order = append(r.order, name)
		r.health[name] = &shardCounters{}
	}
	r.mu.Unlock()
	r.config.AddShard(name)
}

// AddReplicaShard registers a replica-set-backed shard: reads and index
// builds target the set's primary (the registered shard server), while every
// write dispatches through the set's BulkWrite so acknowledgement honours
// the request's write concern across the set's members. Note the primary is
// captured at registration — a post-failover Router must be told about the
// new primary by re-registering.
func (r *Router) AddReplicaShard(name string, rs ReplicaShard) {
	r.AddShard(name, rs.Primary())
	r.mu.Lock()
	r.replicas[name] = rs
	r.mu.Unlock()
}

// replica returns the replica set backing a shard, nil for plain shards.
func (r *Router) replica(name string) ReplicaShard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.replicas[name]
}

// shardBulkWrite dispatches one sub-batch to a shard, through the replica
// set when the shard is replicated so the write concern gates the
// acknowledgement, directly to the shard server otherwise.
func (r *Router) shardBulkWrite(name, db, coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	// Every per-shard dispatch gets its own child span — unordered batches
	// fan out in parallel goroutines, so a traced scatter shows one
	// mongos.shard span per shard under the same parent.
	span := opts.Trace.Child("mongos.shard")
	span.SetAttr("shard", name)
	span.SetAttr("ops", len(ops))
	opts.Trace = span
	hc := r.healthFor(name)
	if hc != nil {
		hc.inFlight.Add(1)
		hc.calls.Add(1)
	}
	var res storage.BulkResult
	if rep := r.replica(name); rep != nil {
		res = rep.BulkWrite(db, coll, ops, opts)
	} else {
		res = r.Shard(name).Database(db).BulkWrite(coll, ops, opts)
	}
	if hc != nil {
		hc.inFlight.Add(-1)
		if res.FirstError() != nil {
			hc.errors.Add(1)
		}
	}
	span.Finish()
	return res
}

// Shard returns the named shard server, or nil.
func (r *Router) Shard(name string) *mongod.Server {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards[name]
}

// ShardNames returns the registered shard names in registration order.
func (r *Router) ShardNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// PrimaryShard returns the shard that stores unsharded collections.
func (r *Router) PrimaryShard() *mongod.Server {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.order) == 0 {
		return nil
	}
	return r.shards[r.order[0]]
}

// Config returns the config server.
func (r *Router) Config() *sharding.ConfigServer { return r.config }

// Stats returns a snapshot of the routing statistics.
func (r *Router) Stats() RoutingStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// ResetStats zeroes the routing statistics.
func (r *Router) ResetStats() {
	r.mu.Lock()
	r.stats = RoutingStats{}
	r.mu.Unlock()
}

func namespace(db, coll string) string { return db + "." + coll }

// remoteCall accounts for one call to a shard, including the simulated
// network latency.
func (r *Router) remoteCall() {
	r.mu.Lock()
	r.stats.ShardCalls++
	r.mu.Unlock()
	if r.opts.NetworkLatency > 0 {
		time.Sleep(r.opts.NetworkLatency)
	}
}

func (r *Router) recordRouting(targeted bool, merged int) {
	r.mu.Lock()
	if targeted {
		r.stats.TargetedQueries++
	} else {
		r.stats.BroadcastQueries++
	}
	r.stats.DocsMerged += int64(merged)
	r.mu.Unlock()
}

// EnableSharding shards a collection with the given shard key, creating the
// backing shard-key index on every shard.
func (r *Router) EnableSharding(db, coll string, keySpec *bson.Doc, chunkSizeBytes int) (*sharding.CollectionMetadata, error) {
	key, err := sharding.ParseShardKey(keySpec)
	if err != nil {
		return nil, err
	}
	meta, err := r.config.ShardCollection(namespace(db, coll), key, chunkSizeBytes)
	if err != nil {
		return nil, err
	}
	for _, name := range r.ShardNames() {
		r.remoteCall()
		if _, err := r.Shard(name).Database(db).Collection(coll).EnsureIndex(key.IndexSpec(), false); err != nil {
			return nil, err
		}
	}
	return meta, nil
}

// Insert routes a document insert. Sharded collections route by shard key;
// unsharded collections go to the primary shard. On a replica-backed shard
// the insert dispatches through the set so the shard's default write
// concern applies; use BulkWrite with an explicit WriteConcern to override
// per request.
func (r *Router) Insert(db, coll string, doc *bson.Doc) (any, error) {
	meta := r.config.Metadata(namespace(db, coll))
	var shardName string
	if meta == nil {
		names := r.ShardNames()
		if len(names) == 0 {
			return nil, fmt.Errorf("mongos: no shards registered")
		}
		shardName = names[0]
	} else {
		routing := meta.Key.ValueOf(doc)
		shardName = meta.RecordInsert(routing, bson.EncodedSize(doc))
	}
	r.remoteCall()
	if rep := r.replica(shardName); rep != nil {
		res := rep.BulkWrite(db, coll, []storage.WriteOp{storage.InsertWriteOp(doc)}, storage.BulkOptions{Ordered: true})
		var id any
		if len(res.InsertedIDs) > 0 {
			id = res.InsertedIDs[0]
		}
		return id, res.FirstError()
	}
	return r.Shard(shardName).Database(db).Insert(coll, doc)
}

// InsertMany routes a batch of inserts through the bulk-write engine: the
// batch is partitioned by target shard and dispatched as one parallel
// sub-batch per shard — one round-trip per shard instead of one per
// document. The returned ids follow the original document order; on failure
// every shard's sub-batch is still attempted and the ids of the documents
// that did insert are returned alongside the first error.
func (r *Router) InsertMany(db, coll string, docs []*bson.Doc) ([]any, error) {
	res := r.BulkWrite(db, coll, storage.InsertOps(docs), storage.BulkOptions{})
	return res.CompactInsertedIDs(), res.FirstError()
}

// targetShards determines which shards a filter must be sent to. The second
// return value reports whether the routing was targeted (fewer shards than
// the whole cluster).
func (r *Router) targetShards(meta *sharding.CollectionMetadata, filter *bson.Doc) ([]string, bool) {
	all := r.ShardNames()
	if meta == nil {
		return all[:1], true
	}
	if len(meta.Key.Fields) != 1 || filter == nil {
		owned := meta.AllShards()
		if len(owned) == 0 {
			owned = all
		}
		return owned, false
	}
	keyField := meta.Key.Fields[0]
	cons := query.ConstraintFor(filter, keyField)
	if cons == nil {
		owned := meta.AllShards()
		if len(owned) == 0 {
			owned = all
		}
		return owned, false
	}
	if cons.IsPoint() {
		seen := make(map[string]bool)
		var out []string
		for _, p := range cons.Points {
			shard, _ := meta.ShardForValue(meta.Key.RoutingValue(p))
			if !seen[shard] {
				seen[shard] = true
				out = append(out, shard)
			}
		}
		sort.Strings(out)
		return out, len(out) < len(all)
	}
	if cons.IsRange() && !meta.Key.Hashed {
		shards := meta.ShardsForRange(cons.Min, cons.HasMin, cons.Max, cons.HasMax)
		if len(shards) == 0 {
			shards = meta.AllShards()
		}
		return shards, len(shards) < len(all)
	}
	owned := meta.AllShards()
	if len(owned) == 0 {
		owned = all
	}
	return owned, false
}

// Find routes a query, gathers per-shard results and merges them under the
// requested sort order. It is a thin wrapper draining the streaming merge
// cursor of FindCursor.
func (r *Router) Find(db, coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	cur, err := r.FindCursor(db, coll, filter, opts)
	if err != nil {
		return nil, err
	}
	return cur.All()
}

// Count routes a count.
func (r *Router) Count(db, coll string, filter *bson.Doc) (int, error) {
	docs, err := r.Find(db, coll, filter, storage.FindOptions{})
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// updateShards visits the shards targeted by spec.Query in order, applying
// perShard on each, accumulating the result and honouring the non-multi
// first-match stop. The plain scalar path and the write-concern bulk
// fallback differ only in the per-shard call, so both route through here.
func (r *Router) updateShards(db, coll string, spec query.UpdateSpec, perShard func(shard string) (storage.UpdateResult, error)) (storage.UpdateResult, error) {
	meta := r.config.Metadata(namespace(db, coll))
	targets, targeted := r.targetShards(meta, spec.Query)
	var total storage.UpdateResult
	for _, name := range targets {
		r.remoteCall()
		res, err := perShard(name)
		total.Matched += res.Matched
		total.Modified += res.Modified
		if res.UpsertedID != nil {
			total.UpsertedID = res.UpsertedID
		}
		if err != nil {
			return total, err
		}
		if !spec.Multi && total.Matched > 0 {
			break
		}
	}
	r.recordRouting(targeted, 0)
	return total, nil
}

// Update routes an update to the shards owning matching documents.
func (r *Router) Update(db, coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	return r.UpdateWithOptions(db, coll, spec, storage.BulkOptions{})
}

// UpdateWithOptions is Update carrying an acknowledgement contract: each
// shard visit that needs one (a journal escalation, a write concern, or a
// replica-backed shard) dispatches as a one-op bulk so the contract reaches
// every shard the routing touches; plain visits keep the scalar fast path.
func (r *Router) UpdateWithOptions(db, coll string, spec query.UpdateSpec, opts storage.BulkOptions) (storage.UpdateResult, error) {
	return r.updateShards(db, coll, spec, func(shard string) (storage.UpdateResult, error) {
		if r.replica(shard) == nil && !opts.Journaled && opts.WriteConcern.IsZero() {
			return r.Shard(shard).Database(db).Update(coll, spec)
		}
		sub := r.shardBulkWrite(shard, db, coll, []storage.WriteOp{storage.UpdateWriteOp(spec)},
			storage.BulkOptions{Ordered: true, Journaled: opts.Journaled, WriteConcern: opts.WriteConcern})
		res := storage.UpdateResult{Matched: sub.Matched, Modified: sub.Modified}
		if len(sub.UpsertedIDs) > 0 {
			res.UpsertedID = sub.UpsertedIDs[0]
		}
		return res, sub.FirstError()
	})
}

// deleteShards is updateShards for deletes.
func (r *Router) deleteShards(db, coll string, filter *bson.Doc, multi bool, perShard func(shard string) (int, error)) (int, error) {
	meta := r.config.Metadata(namespace(db, coll))
	targets, targeted := r.targetShards(meta, filter)
	removed := 0
	for _, name := range targets {
		r.remoteCall()
		n, err := perShard(name)
		removed += n
		if err != nil {
			return removed, err
		}
		if !multi && removed > 0 {
			break
		}
	}
	r.recordRouting(targeted, 0)
	return removed, nil
}

// Delete routes a delete to the shards owning matching documents.
func (r *Router) Delete(db, coll string, filter *bson.Doc, multi bool) (int, error) {
	return r.DeleteWithOptions(db, coll, filter, multi, storage.BulkOptions{})
}

// DeleteWithOptions is Delete with per-shard acknowledgement semantics; see
// UpdateWithOptions.
func (r *Router) DeleteWithOptions(db, coll string, filter *bson.Doc, multi bool, opts storage.BulkOptions) (int, error) {
	return r.deleteShards(db, coll, filter, multi, func(shard string) (int, error) {
		if r.replica(shard) == nil && !opts.Journaled && opts.WriteConcern.IsZero() {
			return r.Shard(shard).Database(db).Delete(coll, filter, multi)
		}
		sub := r.shardBulkWrite(shard, db, coll, []storage.WriteOp{storage.DeleteWriteOp(filter, multi)},
			storage.BulkOptions{Ordered: true, Journaled: opts.Journaled, WriteConcern: opts.WriteConcern})
		return sub.Deleted, sub.FirstError()
	})
}

// EnsureIndex creates an index on every shard holding the collection.
func (r *Router) EnsureIndex(db, coll string, spec *bson.Doc, unique bool) error {
	for _, name := range r.ShardNames() {
		r.remoteCall()
		if _, err := r.Shard(name).Database(db).EnsureIndex(coll, spec, unique); err != nil {
			return err
		}
	}
	return nil
}

// Aggregate routes an aggregation pipeline: the per-document prefix of the
// pipeline runs on each targeted shard, the remainder (grouping, sorting,
// $out) runs on the router over the concatenated shard streams, and $out
// writes to the primary shard. It is a thin wrapper draining the streaming
// iterator of AggregateCursor.
func (r *Router) Aggregate(db, coll string, stages []*bson.Doc) ([]*bson.Doc, error) {
	it, err := r.AggregateCursor(db, coll, stages)
	if err != nil {
		return nil, err
	}
	return aggregate.Drain(it)
}
