package mongos

import (
	"errors"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/sharding"
	"docstore/internal/storage"
)

// newTestRouter builds a 3-shard router.
func newTestRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	cfg := sharding.NewConfigServer()
	r := NewRouter(cfg, opts)
	for _, name := range []string{"Shard1", "Shard2", "Shard3"} {
		r.AddShard(name, mongod.NewServer(mongod.Options{Name: name}))
	}
	return r
}

func TestRouterShardRegistration(t *testing.T) {
	r := newTestRouter(t, Options{})
	if got := r.ShardNames(); len(got) != 3 || got[0] != "Shard1" {
		t.Fatalf("ShardNames = %v", got)
	}
	if r.Shard("Shard2") == nil || r.Shard("nope") != nil {
		t.Fatalf("Shard lookup broken")
	}
	if r.PrimaryShard() == nil || r.PrimaryShard().Name() != "Shard1" {
		t.Fatalf("primary shard wrong")
	}
	if len(r.Config().Shards()) != 3 {
		t.Fatalf("config server shards = %v", r.Config().Shards())
	}
	// Duplicate registration is a no-op.
	r.AddShard("Shard1", mongod.NewServer(mongod.Options{Name: "Shard1"}))
	if len(r.ShardNames()) != 3 {
		t.Fatalf("duplicate AddShard changed the shard list")
	}
	// Empty router has no primary.
	empty := NewRouter(sharding.NewConfigServer(), Options{})
	if empty.PrimaryShard() != nil {
		t.Fatalf("empty router should have no primary")
	}
}

func TestUnshardedCollectionGoesToPrimary(t *testing.T) {
	r := newTestRouter(t, Options{})
	for i := 0; i < 10; i++ {
		if _, err := r.Insert("db", "plain", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Shard("Shard1").Database("db").Collection("plain").Count(); got != 10 {
		t.Fatalf("primary shard holds %d docs", got)
	}
	if got := r.Shard("Shard2").Database("db").Collection("plain").Count(); got != 0 {
		t.Fatalf("non-primary shard holds %d docs", got)
	}
	docs, err := r.Find("db", "plain", bson.D("v", bson.D("$lt", 5)), storage.FindOptions{})
	if err != nil || len(docs) != 5 {
		t.Fatalf("Find on unsharded = %d, %v", len(docs), err)
	}
}

func TestShardedInsertDistributionAndTargetedFind(t *testing.T) {
	r := newTestRouter(t, Options{})
	meta, err := r.EnableSharding("db", "sales", bson.D("k", "hashed"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var docs []*bson.Doc
	for i := 0; i < 900; i++ {
		docs = append(docs, bson.D(bson.IDKey, i, "k", i, "v", i%10))
	}
	if _, err := r.InsertMany("db", "sales", docs); err != nil {
		t.Fatal(err)
	}
	// All three shards received data.
	populated := 0
	total := 0
	for _, name := range r.ShardNames() {
		n := r.Shard(name).Database("db").Collection("sales").Count()
		total += n
		if n > 0 {
			populated++
		}
	}
	if populated != 3 || total != 900 {
		t.Fatalf("distribution: %d shards populated, %d total docs", populated, total)
	}
	if err := meta.Validate(); err != nil {
		t.Fatalf("metadata invalid: %v", err)
	}

	// A query pinning the shard key is targeted to one shard.
	r.ResetStats()
	out, err := r.Find("db", "sales", bson.D("k", 123), storage.FindOptions{})
	if err != nil || len(out) != 1 {
		t.Fatalf("targeted find = %d docs, %v", len(out), err)
	}
	st := r.Stats()
	if st.TargetedQueries != 1 || st.BroadcastQueries != 0 {
		t.Fatalf("stats after targeted find = %+v", st)
	}
	if st.ShardCalls != 1 {
		t.Fatalf("targeted find used %d shard calls", st.ShardCalls)
	}

	// A query without the shard key is broadcast to every shard.
	r.ResetStats()
	out, err = r.Find("db", "sales", bson.D("v", 3), storage.FindOptions{})
	if err != nil || len(out) != 90 {
		t.Fatalf("broadcast find = %d docs, %v", len(out), err)
	}
	st = r.Stats()
	if st.BroadcastQueries != 1 || st.ShardCalls != 3 {
		t.Fatalf("stats after broadcast find = %+v", st)
	}

	// Count goes through Find.
	n, err := r.Count("db", "sales", bson.D("v", 3))
	if err != nil || n != 90 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestRangeShardedTargeting(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "orders", bson.D("k", 1), 2048); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := r.Insert("db", "orders", bson.D(bson.IDKey, i, "k", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Range sharding keeps all chunks on one shard until balanced; reassign
	// some chunks so range targeting is observable.
	meta := r.Config().Metadata("db.orders")
	// Move documents according to a balanced chunk layout: simulate by simply
	// checking that a shard-key range query is not broadcast when the chunks
	// it needs live on fewer shards than the cluster has.
	shards, targeted := r.targetShards(meta, bson.D("k", bson.D("$gte", 0, "$lte", 10)))
	if len(shards) != 1 || !targeted {
		t.Fatalf("range targeting = %v (targeted=%v)", shards, targeted)
	}
	// An $in on the shard key is also targeted.
	shards, targeted = r.targetShards(meta, bson.D("k", bson.D("$in", bson.A(1, 2, 3))))
	if len(shards) != 1 || !targeted {
		t.Fatalf("$in targeting = %v (targeted=%v)", shards, targeted)
	}
	// No shard-key constraint: broadcast to every shard owning chunks.
	shards, targeted = r.targetShards(meta, bson.D("other", 1))
	if targeted || len(shards) == 0 {
		t.Fatalf("missing-key targeting = %v (targeted=%v)", shards, targeted)
	}
}

func TestRouterSortSkipLimitMerge(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "c", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := r.Insert("db", "c", bson.D(bson.IDKey, i, "k", i, "v", 99-i)); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := r.Find("db", "c", nil, storage.FindOptions{
		Sort:  query.MustParseSort(bson.D("v", 1)),
		Skip:  10,
		Limit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("got %d docs", len(docs))
	}
	for i, d := range docs {
		v, _ := d.Get("v")
		if v != int64(10+i) {
			t.Fatalf("doc %d v = %v, want %d (global sort violated)", i, v, 10+i)
		}
	}
	// Skip beyond the end.
	docs, err = r.Find("db", "c", nil, storage.FindOptions{Skip: 1000})
	if err != nil || len(docs) != 0 {
		t.Fatalf("skip beyond end = %d docs, %v", len(docs), err)
	}
}

func TestRouterUpdateAndDelete(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "c", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := r.Insert("db", "c", bson.D(bson.IDKey, i, "k", i, "flag", i%3)); err != nil {
			t.Fatal(err)
		}
	}
	// Broadcast multi-update.
	res, err := r.Update("db", "c", query.UpdateSpec{
		Query:  bson.D("flag", 0),
		Update: bson.D("$set", bson.D("updated", true)),
		Multi:  true,
	})
	if err != nil || res.Matched != 100 || res.Modified != 100 {
		t.Fatalf("broadcast update = %+v, %v", res, err)
	}
	// Targeted single update by shard key.
	res, err = r.Update("db", "c", query.UpdateSpec{
		Query:  bson.D("k", 17),
		Update: bson.D("$set", bson.D("updated", "single")),
	})
	if err != nil || res.Matched != 1 {
		t.Fatalf("targeted update = %+v, %v", res, err)
	}
	// Broadcast delete.
	n, err := r.Delete("db", "c", bson.D("flag", 2), true)
	if err != nil || n != 100 {
		t.Fatalf("broadcast delete = %d, %v", n, err)
	}
	total, _ := r.Count("db", "c", nil)
	if total != 200 {
		t.Fatalf("count after delete = %d", total)
	}
	// Targeted single delete (k=16 has flag 1, so it survived the broadcast
	// delete above).
	n, err = r.Delete("db", "c", bson.D("k", 16), false)
	if err != nil || n != 1 {
		t.Fatalf("targeted delete = %d, %v", n, err)
	}
}

func TestRouterAggregateShardedGroup(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "sales", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if _, err := r.Insert("db", "sales", bson.D(
			bson.IDKey, i, "k", i, "item", i%6, "qty", 1, "year", 2000+i%2)); err != nil {
			t.Fatal(err)
		}
	}
	stages := []*bson.Doc{
		bson.D("$match", bson.D("year", 2001)),
		bson.D("$group", bson.D(bson.IDKey, "$item", "total", bson.D("$sum", "$qty"))),
		bson.D("$sort", bson.D(bson.IDKey, 1)),
		bson.D("$out", "agg_out"),
	}
	out, err := r.Aggregate("db", "sales", stages)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 { // items 1, 3, 5 occur in year 2001
		t.Fatalf("groups = %d", len(out))
	}
	for _, g := range out {
		if v, _ := g.Get("total"); v != int64(100) {
			t.Fatalf("group %s total wrong", g)
		}
	}
	// $out landed on the primary shard.
	if got := r.PrimaryShard().Database("db").Collection("agg_out").Count(); got != 3 {
		t.Fatalf("merge output on primary shard = %d docs", got)
	}
	// The router must give the same answer as running the same pipeline over
	// an equivalent stand-alone collection.
	standalone := mongod.NewServer(mongod.Options{})
	for i := 0; i < 600; i++ {
		_, _ = standalone.Database("db").Insert("sales", bson.D(
			bson.IDKey, i, "k", i, "item", i%6, "qty", 1, "year", 2000+i%2))
	}
	reference, err := standalone.Database("db").Aggregate("sales", stages[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(reference) != len(out) {
		t.Fatalf("sharded vs standalone group count mismatch: %d vs %d", len(out), len(reference))
	}
	for i := range reference {
		if !reference[i].EqualUnordered(out[i]) {
			t.Fatalf("group %d differs: %s vs %s", i, reference[i], out[i])
		}
	}
	// Errors propagate.
	if _, err := r.Aggregate("db", "sales", []*bson.Doc{bson.D("$bogus", 1)}); err == nil {
		t.Fatalf("invalid pipeline should fail")
	}
	// Aggregation over an unsharded collection with no local prefix.
	if _, err := r.Insert("db", "plain", bson.D(bson.IDKey, 1, "x", 5)); err != nil {
		t.Fatal(err)
	}
	out, err = r.Aggregate("db", "plain", []*bson.Doc{
		bson.D("$group", bson.D(bson.IDKey, nil, "n", bson.D("$sum", 1))),
	})
	if err != nil || len(out) != 1 {
		t.Fatalf("unsharded aggregate = %v, %v", out, err)
	}
}

func TestRouterEnsureIndexOnAllShards(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "c", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.EnsureIndex("db", "c", bson.D("v", 1), false); err != nil {
		t.Fatal(err)
	}
	for _, name := range r.ShardNames() {
		idx := r.Shard(name).Database("db").Collection("c").Index("v_1")
		if idx == nil {
			t.Fatalf("shard %s missing index", name)
		}
	}
	if err := r.EnsureIndex("db", "c", bson.D("v", 7), false); err == nil {
		t.Fatalf("bad index spec should fail")
	}
	// EnableSharding validates its key and rejects re-sharding.
	if _, err := r.EnableSharding("db", "c", bson.D("other", 1), 0); err == nil {
		t.Fatalf("re-sharding should fail")
	}
	if _, err := r.EnableSharding("db", "c2", bson.D("x", true), 0); err == nil {
		t.Fatalf("invalid key should fail")
	}
}

func TestRouterNetworkLatencySimulation(t *testing.T) {
	r := newTestRouter(t, Options{NetworkLatency: 2 * time.Millisecond})
	if _, err := r.EnableSharding("db", "c", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := r.Insert("db", "c", bson.D(bson.IDKey, i, "k", i)); err != nil {
			t.Fatal(err)
		}
	}
	// A broadcast find issues one remote call per shard; with sequential
	// scatter the elapsed time reflects the summed latency.
	start := time.Now()
	if _, err := r.Find("db", "c", bson.D("other", 1), storage.FindOptions{}); err != nil {
		t.Fatal(err)
	}
	broadcast := time.Since(start)
	start = time.Now()
	if _, err := r.Find("db", "c", bson.D("k", 5), storage.FindOptions{}); err != nil {
		t.Fatal(err)
	}
	targeted := time.Since(start)
	if broadcast < 6*time.Millisecond {
		t.Fatalf("broadcast with 3 shards at 2ms latency took only %v", broadcast)
	}
	if targeted >= broadcast {
		t.Fatalf("targeted (%v) should be faster than broadcast (%v)", targeted, broadcast)
	}
}

func TestRouterParallelScatter(t *testing.T) {
	r := newTestRouter(t, Options{NetworkLatency: 2 * time.Millisecond, Parallel: true})
	if _, err := r.EnableSharding("db", "c", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := r.Insert("db", "c", bson.D(bson.IDKey, i, "k", i)); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	docs, err := r.Find("db", "c", nil, storage.FindOptions{})
	if err != nil || len(docs) != 30 {
		t.Fatalf("parallel find = %d docs, %v", len(docs), err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("parallel broadcast took %v; expected roughly one latency unit", elapsed)
	}
}

// TestRouterFindHintUnknownIndex checks a bad hint fails a routed query with
// the shard-attributed storage error instead of silently scanning, and that
// a hint naming a real per-shard index still routes.
func TestRouterFindHintUnknownIndex(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "rows", bson.D("g", "hashed"), 1<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := r.Insert("db", "rows", bson.D(bson.IDKey, i, "g", i%5, "v", i)); err != nil {
			t.Fatal(err)
		}
	}

	var unknown *storage.ErrUnknownIndex
	if _, err := r.Find("db", "rows", bson.D("v", 3), storage.FindOptions{Hint: "nope_1"}); !errors.As(err, &unknown) {
		t.Fatalf("routed find with bad hint: %v", err)
	}
	if _, err := r.FindCursor("db", "rows", bson.D("v", 3), storage.FindOptions{Hint: "nope_1"}); !errors.As(err, &unknown) {
		t.Fatalf("routed cursor with bad hint: %v", err)
	}

	// Create the index on every shard; the hinted query then works.
	for _, name := range r.ShardNames() {
		if _, err := r.Shard(name).Database("db").EnsureIndex("rows", bson.D("v", 1), false); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := r.Find("db", "rows", bson.D("v", 3), storage.FindOptions{Hint: "v_1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("hinted routed find returned %d docs", len(docs))
	}
}
