package mongos

import (
	"testing"

	"docstore/internal/bson"
	"docstore/internal/storage"
)

// TestShardHealthCountsDispatches pins the per-shard dispatch counters: a
// scattered bulk counts one call on every owning shard, a failing batch
// counts an error on the shard that reported it, and nothing stays marked
// in flight once the scatter returns.
func TestShardHealthCountsDispatches(t *testing.T) {
	r := newTestRouter(t, Options{})
	if _, err := r.EnableSharding("db", "sales", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}
	ops := make([]storage.WriteOp, 600)
	for i := range ops {
		ops[i] = storage.InsertWriteOp(bson.D(bson.IDKey, i, "k", i))
	}
	if res := r.BulkWrite("db", "sales", ops, storage.BulkOptions{}); res.FirstError() != nil {
		t.Fatalf("errors: %v", res.Errors)
	}

	health := r.ShardHealth()
	if len(health) != len(r.ShardNames()) {
		t.Fatalf("health entries = %d, want one per shard", len(health))
	}
	for _, h := range health {
		if h.Calls != 1 {
			t.Fatalf("shard %s calls = %d, want 1 grouped dispatch", h.Shard, h.Calls)
		}
		if h.InFlight != 0 {
			t.Fatalf("shard %s still marks %d in flight after return", h.Shard, h.InFlight)
		}
		if h.Errors != 0 {
			t.Fatalf("shard %s errors = %d on a clean batch", h.Shard, h.Errors)
		}
	}

	// A duplicate-id insert fails on exactly the shard owning the key.
	res := r.BulkWrite("db", "sales", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, 0, "k", 0)),
	}, storage.BulkOptions{})
	if res.FirstError() == nil {
		t.Fatalf("duplicate insert succeeded")
	}
	var errored int64
	for _, h := range r.ShardHealth() {
		errored += h.Errors
		if h.InFlight != 0 {
			t.Fatalf("shard %s in flight after failed dispatch", h.Shard)
		}
	}
	if errored != 1 {
		t.Fatalf("errored dispatches = %d, want 1", errored)
	}

	// Gauges render one labeled triple per shard.
	gauges := r.HealthGauges()
	if len(gauges) != 3*len(health) {
		t.Fatalf("gauges = %d, want 3 per shard", len(gauges))
	}
	for _, g := range gauges {
		if len(g.Labels) != 2 || g.Labels[0] != "shard" {
			t.Fatalf("gauge labels = %v", g.Labels)
		}
	}
}
