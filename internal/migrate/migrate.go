// Package migrate implements the thesis' data-migration algorithm
// (Figure 4.3): each TPC-DS `.dat` file is read line by line, every line is
// split on the '|' delimiter, a HashMap of column position → column name maps
// each value to its key, and the resulting document is inserted into the
// collection named after the table. Null column values (empty strings) are
// omitted from the document, exactly as §4.1.2 describes.
package migrate

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"docstore/internal/bson"
	"docstore/internal/driver"
	"docstore/internal/tpcds"
)

// LoadResult reports the outcome of loading one table.
type LoadResult struct {
	Table     string
	Documents int
	Bytes     int64
	Duration  time.Duration
}

// DatasetLoadResult aggregates per-table load results, mirroring Table 4.3.
type DatasetLoadResult struct {
	Tables []LoadResult
	Total  time.Duration
}

// Result returns the load result for one table, or nil.
func (r *DatasetLoadResult) Result(table string) *LoadResult {
	for i := range r.Tables {
		if r.Tables[i].Table == table {
			return &r.Tables[i]
		}
	}
	return nil
}

// TotalDocuments sums the loaded document counts.
func (r *DatasetLoadResult) TotalDocuments() int {
	n := 0
	for _, t := range r.Tables {
		n += t.Documents
	}
	return n
}

// TotalBytes sums the loaded document sizes.
func (r *DatasetLoadResult) TotalBytes() int64 {
	var n int64
	for _, t := range r.Tables {
		n += t.Bytes
	}
	return n
}

// RowToDocument converts one `.dat` row into a document using the table's
// column catalog: the HashMap of the algorithm maps position i to column
// name, and the declared column type converts the string value. Empty values
// are omitted (the thesis omits null key-value entries).
func RowToDocument(table *tpcds.Table, row []string) (*bson.Doc, error) {
	if len(row) > len(table.Columns) {
		return nil, fmt.Errorf("migrate: row has %d values but %s has %d columns", len(row), table.Name, len(table.Columns))
	}
	doc := bson.NewDoc(len(row))
	for i, raw := range row {
		if raw == "" {
			continue
		}
		col := table.Columns[i]
		switch col.Type {
		case tpcds.ColInt:
			n, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("migrate: %s.%s: %q is not an integer", table.Name, col.Name, raw)
			}
			doc.Set(col.Name, n)
		case tpcds.ColFloat:
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("migrate: %s.%s: %q is not a number", table.Name, col.Name, raw)
			}
			doc.Set(col.Name, f)
		default:
			doc.Set(col.Name, raw)
		}
	}
	return doc, nil
}

// batchSize is the number of documents buffered per InsertMany call,
// mirroring the driver's bulk insert batching.
const batchSize = 1000

// LoadTable streams a `.dat` file into the collection named after the table.
func LoadTable(store driver.Store, table *tpcds.Table, r io.Reader) (LoadResult, error) {
	res := LoadResult{Table: table.Name}
	start := time.Now()
	batch := make([]*bson.Doc, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := store.InsertMany(table.Name, batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	err := tpcds.ReadDat(r, func(row []string) error {
		doc, err := RowToDocument(table, row)
		if err != nil {
			return err
		}
		res.Documents++
		batch = append(batch, doc)
		if len(batch) >= batchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if err := flush(); err != nil {
		return res, err
	}
	res.Duration = time.Since(start)
	res.Bytes = store.DataSizeBytes(table.Name)
	return res, nil
}

// LoadTableFromGenerator generates a table's rows in memory and loads them,
// avoiding the filesystem; it is what the experiment harness and benchmarks
// use.
func LoadTableFromGenerator(store driver.Store, g *tpcds.Generator, table string) (LoadResult, error) {
	t := g.Schema().Table(table)
	if t == nil {
		return LoadResult{}, fmt.Errorf("migrate: unknown table %q", table)
	}
	data, err := g.TableDat(table)
	if err != nil {
		return LoadResult{}, err
	}
	return LoadTable(store, t, strings.NewReader(string(data)))
}

// LoadDataset loads every table of the generator's scale, returning per-table
// load times (the data of Table 4.3 and Figure 4.9).
func LoadDataset(store driver.Store, g *tpcds.Generator) (*DatasetLoadResult, error) {
	out := &DatasetLoadResult{}
	start := time.Now()
	for _, table := range g.Schema().TableNames() {
		res, err := LoadTableFromGenerator(store, g, table)
		if err != nil {
			return out, fmt.Errorf("migrate: loading %s: %w", table, err)
		}
		out.Tables = append(out.Tables, res)
	}
	out.Total = time.Since(start)
	return out, nil
}

// EnsureQueryIndexes creates the secondary indexes the thesis' experiments
// rely on: every foreign-key column of the fact tables touched by the
// benchmark queries, plus the primary keys of their dimension tables. The
// stand-alone and sharded experiments both call this after loading.
func EnsureQueryIndexes(store driver.Store, schema *tpcds.Schema) error {
	for _, factName := range []string{"store_sales", "store_returns", "inventory"} {
		fact := schema.Table(factName)
		for _, fk := range fact.ForeignKeys {
			if err := store.EnsureIndex(factName, bson.D(fk.Column, 1), false); err != nil {
				return err
			}
		}
	}
	for _, dim := range []string{"date_dim", "item", "customer", "customer_address",
		"customer_demographics", "household_demographics", "promotion", "store", "warehouse"} {
		t := schema.Table(dim)
		if len(t.PrimaryKey) == 0 {
			continue
		}
		if err := store.EnsureIndex(dim, bson.D(t.PrimaryKey[0], 1), false); err != nil {
			return err
		}
	}
	return nil
}
