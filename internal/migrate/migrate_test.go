package migrate

import (
	"strings"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/driver"
	"docstore/internal/mongod"
	"docstore/internal/storage"
	"docstore/internal/tpcds"
)

func newStore() *driver.Standalone {
	return driver.NewStandalone(mongod.NewServer(mongod.Options{}).Database("Dataset_1GB"))
}

func TestRowToDocumentTypesAndNulls(t *testing.T) {
	schema := tpcds.NewSchema()
	ca := schema.MustTable("customer_address")
	row := []string{"1", "AAAAAAAABAAAAAAA", "18", "Jackson", "Parkway", "", "Fairview", "Williamson County", "CA", "35709", "United States", "-5.00", "condo"}
	doc, err := RowToDocument(ca, row)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Get("ca_address_sk"); v != int64(1) {
		t.Fatalf("ca_address_sk = %v (%T)", v, v)
	}
	if v, _ := doc.Get("ca_street_name"); v != "Jackson" {
		t.Fatalf("ca_street_name = %v", v)
	}
	if v, _ := doc.Get("ca_gmt_offset"); v != -5.0 {
		t.Fatalf("ca_gmt_offset = %v (%T)", v, v)
	}
	// Null (empty) column values are omitted, per §4.1.2.
	if doc.Has("ca_suite_number") {
		t.Fatalf("null column should be omitted: %s", doc)
	}
	// Errors: too many values, bad int, bad float.
	if _, err := RowToDocument(ca, make([]string, len(ca.Columns)+1)); err == nil {
		t.Fatalf("row wider than the table should fail")
	}
	if _, err := RowToDocument(ca, []string{"xx"}); err == nil {
		t.Fatalf("non-integer key should fail")
	}
	bad := append([]string(nil), row...)
	bad[11] = "not-a-float"
	if _, err := RowToDocument(ca, bad); err == nil {
		t.Fatalf("non-float value should fail")
	}
	// Short rows are allowed (trailing nulls).
	short, err := RowToDocument(ca, []string{"7"})
	if err != nil || short.Len() != 1 {
		t.Fatalf("short row: %v %v", short, err)
	}
}

func TestLoadTableFromDat(t *testing.T) {
	store := newStore()
	schema := tpcds.NewSchema()
	dat := "1|AAAAAAAABAAAAAAA|18|Jackson|Parkway||Fairview|Williamson County|CA|35709|United States|-5.00|condo|\n" +
		"2|AAAAAAAACAAAAAAA|25|Main|Street|Suite 1|Midway|Williamson County|OH|45040|United States|-5.00|apartment|\n"
	res, err := LoadTable(store, schema.MustTable("customer_address"), strings.NewReader(dat))
	if err != nil {
		t.Fatal(err)
	}
	if res.Documents != 2 || res.Table != "customer_address" || res.Bytes <= 0 || res.Duration <= 0 {
		t.Fatalf("result = %+v", res)
	}
	docs, err := store.Find("customer_address", bson.D("ca_city", "Midway"), storage.FindOptions{})
	if err != nil || len(docs) != 1 {
		t.Fatalf("loaded docs = %v, %v", docs, err)
	}
	// A malformed line surfaces an error.
	if _, err := LoadTable(store, schema.MustTable("customer_address"), strings.NewReader("oops|x|\n")); err == nil {
		t.Fatalf("malformed numeric value should fail")
	}
}

func TestLoadTableFromGeneratorAndDataset(t *testing.T) {
	store := newStore()
	g := tpcds.NewGenerator(tpcds.ScaleSmall.WithDivisor(5000), 11)
	res, err := LoadTableFromGenerator(store, g, "store")
	if err != nil {
		t.Fatal(err)
	}
	if res.Documents != g.RowCount("store") {
		t.Fatalf("loaded %d docs, want %d", res.Documents, g.RowCount("store"))
	}
	if _, err := LoadTableFromGenerator(store, g, "nope"); err == nil {
		t.Fatalf("unknown table should fail")
	}

	full := newStore()
	ds, err := LoadDataset(full, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Tables) != 24 {
		t.Fatalf("loaded %d tables", len(ds.Tables))
	}
	if ds.TotalDocuments() <= 0 || ds.TotalBytes() <= 0 || ds.Total <= 0 {
		t.Fatalf("dataset totals = %+v", ds)
	}
	for _, table := range g.Schema().TableNames() {
		r := ds.Result(table)
		if r == nil {
			t.Fatalf("missing load result for %s", table)
		}
		if r.Documents != g.RowCount(table) {
			t.Fatalf("%s loaded %d docs, want %d", table, r.Documents, g.RowCount(table))
		}
		if n, _ := full.Count(table, nil); n != r.Documents {
			t.Fatalf("%s stored %d docs, want %d", table, n, r.Documents)
		}
	}
	if ds.Result("unknown") != nil {
		t.Fatalf("unknown table should have no result")
	}
	// The thesis' load-time observation (i): equal row counts load in
	// comparable time. Here we only check counts carry through to results.
	if ds.Result("income_band").Documents != 20 {
		t.Fatalf("income_band loaded %d docs", ds.Result("income_band").Documents)
	}
	// Indexes for the benchmark queries build cleanly on the loaded data.
	if err := EnsureQueryIndexes(full, g.Schema()); err != nil {
		t.Fatal(err)
	}
	if len(full.DB.Collection("store_sales").Indexes()) == 0 {
		t.Fatalf("store_sales should have indexes")
	}
	if len(full.DB.Collection("date_dim").Indexes()) == 0 {
		t.Fatalf("date_dim should have a primary-key index")
	}
}
