// Benchmarks for the change-streams subsystem (PR 4): live fan-out
// throughput from one writer to N watchers.
//
//	BenchmarkChangeStreamFanout/watchers=N — one writer inserts a fixed
//	    batch workload into a watched collection while N watchers drain
//	    their streams concurrently; the reported events/s is the total
//	    delivery rate (documents x watchers / wall time). The publish path
//	    runs under the broker lock, so this measures how fan-out scales
//	    with watcher count.
//	BenchmarkChangeStreamFanout/watchers=0 — the same write workload with
//	    no watcher attached: the write path's zero-subscriber fast path
//	    (one atomic load, no event materialization), for comparison
//	    against the watched runs.
//
// Each iteration runs a fixed workload of 2000 inserted documents in
// 50-document unordered bulk batches, so even CI's -benchtime=1x measures a
// real stream rather than a single event.
package docstore_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

const (
	fanoutDocs  = 2000
	fanoutBatch = 50
)

func BenchmarkChangeStreamFanout(b *testing.B) {
	for _, watchers := range []int{0, 1, 4, 16} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			srv := mongod.NewServer(mongod.Options{})
			if _, err := srv.EnableDurability(mongod.Durability{Dir: b.TempDir(), Sync: wal.SyncNone}); err != nil {
				b.Fatal(err)
			}
			defer srv.CloseDurability()
			db := srv.Database("bench")

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < watchers; w++ {
					stream, err := srv.Watch("bench", "rows", mongod.WatchOptions{BufferSize: fanoutDocs + fanoutBatch})
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer stream.Close()
						for n := 0; n < fanoutDocs; {
							ev, err := stream.Next(5 * time.Second)
							if err != nil || ev == nil {
								b.Errorf("watcher starved after %d events: %v", n, err)
								return
							}
							n++
						}
					}()
				}
				for off := 0; off < fanoutDocs; off += fanoutBatch {
					ops := make([]storage.WriteOp, 0, fanoutBatch)
					for k := 0; k < fanoutBatch; k++ {
						ops = append(ops, storage.InsertWriteOp(bson.D(
							bson.IDKey, fmt.Sprintf("%d-%d", i, off+k),
							"v", off+k,
						)))
					}
					res := db.BulkWrite("rows", ops, storage.BulkOptions{})
					if err := res.FirstError(); err != nil {
						b.Fatal(err)
					}
				}
				wg.Wait()
			}
			b.StopTimer()
			elapsed := b.Elapsed()
			if elapsed > 0 {
				delivered := float64(b.N) * fanoutDocs * float64(max(watchers, 1))
				b.ReportMetric(delivered/elapsed.Seconds(), "events/s")
			}
		})
	}
}
