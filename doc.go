// Package docstore is a from-scratch Go reproduction of "Performance
// Evaluation of Analytical Queries on a Stand-alone and Sharded Document
// Store" (Raghavendra, 2015 / EDBT 2017): a MongoDB-like document store with
// secondary indexes, an aggregation pipeline and hash/range sharding; a
// TPC-DS data generator; the thesis' data migration, denormalization and
// query translation algorithms; and a benchmark harness that regenerates
// every table and figure of the evaluation.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the executables and examples/ holds runnable
// walkthroughs of the public API surface.
package docstore
