// Package docstore is a from-scratch Go reproduction of "Performance
// Evaluation of Analytical Queries on a Stand-alone and Sharded Document
// Store" (Raghavendra, 2015 / EDBT 2017): a MongoDB-like document store with
// secondary indexes, an aggregation pipeline and hash/range sharding; a
// TPC-DS data generator; the thesis' data migration, denormalization and
// query translation algorithms; and a benchmark harness that regenerates
// every table and figure of the evaluation.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the executables and examples/ holds runnable
// walkthroughs of the public API surface.
//
// # Streaming cursor execution
//
// Every query layer streams results in cursor batches instead of
// materializing full result sets, so peak memory for a large scan is
// O(batch) rather than O(result):
//
//   - storage.Collection.FindCursor returns a storage.Cursor
//     (HasNext/Next/TryNext/NextBatch/All/Close) backed by an incremental
//     collection or index scan; each batch is read under one lock
//     acquisition. The batch size is set per query with
//     storage.FindOptions.BatchSize: 0 uses storage.DefaultBatchSize,
//     negative values disable batching and produce the whole result in one
//     batch (what the slice-returning Find does internally).
//   - aggregate pipelines execute over aggregate.Iterator via
//     Pipeline.RunIter: $match, $project, $addFields, $unwind, $limit and
//     $skip stream document-at-a-time ($limit stops the upstream scan
//     early), $group accumulates its buckets incrementally, and only
//     blocking stages ($sort, $lookup, $out, $count) materialize.
//   - mongod.Database.FindCursor and AggregateCursor expose both, with a
//     leading $match pushed down to the storage engine's indexes.
//   - mongos.Router.FindCursor merges per-shard cursors with a streaming
//     k-way merge (one prefetching goroutine per shard when
//     Options.Parallel is set); Router.AggregateCursor streams the shard
//     prefix of a pipeline into the router-side merge pipeline.
//   - driver.CursorStore is the deployment-independent cursor interface,
//     implemented by both the stand-alone and the sharded adapters.
//   - the wire protocol carries cursor batching through batchSize/cursorId:
//     a find or aggregate with batchSize > 0 returns one batch plus a
//     cursor id, getMore pages through the rest, killCursors releases a
//     half-consumed cursor, and wire.Client.FindCursor/AggregateCursor wrap
//     the exchange in a client-side cursor. Abandoned server-side cursors
//     are reaped after an idle timeout (wire.DefaultCursorTimeout, the
//     docstored -cursor-timeout flag).
//
// The slice APIs (Find, Aggregate, Router.Find, ...) are thin wrappers that
// drain these cursors, so existing callers and benchmarks are unchanged.
package docstore
