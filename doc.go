// Package docstore is a from-scratch Go reproduction of "Performance
// Evaluation of Analytical Queries on a Stand-alone and Sharded Document
// Store" (Raghavendra, 2015 / EDBT 2017): a MongoDB-like document store with
// secondary indexes, an aggregation pipeline and hash/range sharding; a
// TPC-DS data generator; the thesis' data migration, denormalization and
// query translation algorithms; and a benchmark harness that regenerates
// every table and figure of the evaluation.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the executables and examples/ holds runnable
// walkthroughs of the public API surface.
//
// # Streaming cursor execution
//
// Every query layer streams results in cursor batches instead of
// materializing full result sets, so peak memory for a large scan is
// O(batch) rather than O(result):
//
//   - storage.Collection.FindCursor returns a storage.Cursor
//     (HasNext/Next/TryNext/NextBatch/All/Close) backed by an incremental
//     collection or index scan over one pinned snapshot; batches are
//     filled without taking any lock (see "Concurrency & isolation"
//     below). The batch size is set per query with
//     storage.FindOptions.BatchSize: 0 uses storage.DefaultBatchSize,
//     negative values disable batching and produce the whole result in one
//     batch (what the slice-returning Find does internally).
//   - aggregate pipelines execute over aggregate.Iterator via
//     Pipeline.RunIter: $match, $project, $addFields, $unwind, $limit and
//     $skip stream document-at-a-time ($limit stops the upstream scan
//     early), $group accumulates its buckets incrementally, and only
//     blocking stages ($sort, $lookup, $out, $count) materialize.
//   - mongod.Database.FindCursor and AggregateCursor expose both, with a
//     leading $match pushed down to the storage engine's indexes.
//   - mongos.Router.FindCursor merges per-shard cursors with a streaming
//     k-way merge (one prefetching goroutine per shard when
//     Options.Parallel is set); Router.AggregateCursor streams the shard
//     prefix of a pipeline into the router-side merge pipeline.
//   - driver.Store is the deployment-independent interface (cursors
//     included), implemented by both the stand-alone and the sharded
//     adapters; driver.Capabilities reports what a store supports.
//   - the wire protocol carries cursor batching through batchSize/cursorId:
//     a find or aggregate with batchSize > 0 returns one batch plus a
//     cursor id, getMore pages through the rest, killCursors releases a
//     half-consumed cursor, and wire.Client.FindCursor/AggregateCursor wrap
//     the exchange in a client-side cursor. Abandoned server-side cursors
//     are reaped after an idle timeout (wire.DefaultCursorTimeout, the
//     docstored -cursor-timeout flag).
//
// The slice APIs (Find, Aggregate, Router.Find, ...) are thin wrappers that
// drain these cursors, so existing callers and benchmarks are unchanged.
//
// # Write path
//
// The write path mirrors the cursor engine's layering with a batched
// bulk-write engine, so fresh-ingest throughput scales with batch size the
// way read throughput scales with cursor batches:
//
//   - storage.Collection.BulkWrite executes a mixed batch of inserts,
//     updates and deletes (storage.WriteOp) under a single write-lock
//     acquisition with per-op error attribution (storage.BulkError) and
//     amortized maintenance: matchers compile before the lock, the record
//     array grows once for all inserts, and tombstone compaction is
//     considered once per batch. Ordered mode stops at the first failure;
//     unordered mode attempts every op.
//   - mongod.Database.BulkWrite profiles each batch as one entry carrying
//     the batch size and per-op failure count, and counts each op under its
//     own opcounter kind.
//   - mongos.Router.BulkWrite partitions a bulk by target shard through the
//     chunk map and dispatches one sub-batch per shard — one round-trip per
//     shard instead of one per document — merging per-shard results with
//     original-index attribution. Unordered sub-batches fan out in parallel
//     goroutines; ordered batches dispatch maximal contiguous same-shard
//     runs sequentially, as the real mongos does. Broadcast updates/deletes
//     fall back to the scalar routing path in place.
//   - bulk writes are part of the one driver.Store interface, implemented
//     by both adapters (the former CursorStore/BulkStore/WatchStore
//     ladder survives as deprecated aliases; discover support with
//     driver.Capabilities instead of type assertions).
//   - scalar Update/UpdateOne/UpdateMany/Delete/DeleteID are thin wrappers
//     over BulkWrite, so COW accounting, journaling and write-concern
//     threading have exactly one mutation code path.
//   - the wire protocol's bulkWrite op carries the batch ("docs", one op
//     document each), the ordered flag and a result document with counters,
//     aligned insertedIds and the writeErrors array; wire.Client.BulkWrite
//     (with BulkInsertOp/BulkUpdateOp/BulkDeleteOp builders) wraps the
//     exchange, and docstore-shell passes "ordered" through and prints the
//     result document.
//
// InsertMany at every layer (and ReplaceContents, which $out uses) is a
// thin wrapper over this path, so the migration and denormalization loaders
// batch for free. BenchmarkBulkInsertVsLoop measures the win on the wire
// and router paths.
//
// # Concurrency & isolation
//
// The storage engine is a multi-version copy-on-write store: reads never
// block writes, writes never block reads, and every scan is a point-in-time
// snapshot of one committed state.
//
//   - Versions and snapshots: a collection's state lives in an immutable
//     version (records, counters, journal watermark, index definitions)
//     published through an atomic pointer. storage.Collection.Snapshot pins
//     the current version with one atomic load; the returned
//     storage.Snapshot serves Count/Docs/Scan/FindID/WriteData/LastLSN
//     lock-free and stays frozen no matter what commits afterwards. Release
//     (idempotent; Cursor.Close does it for you) drops the pin so the
//     engine can recycle what the snapshot retained; a leaked snapshot
//     degrades recycling but never correctness — Go's GC still reclaims
//     the versions it pinned.
//   - Writer serialization: writers (Insert, Update, Delete, BulkWrite,
//     EnsureIndex, Drop...) serialize on one per-collection mutex, exactly
//     as before; the WAL append still happens under that mutex, so journal
//     order, replay determinism and change-stream ordering are untouched.
//     A batch mutates the writer's working state and publishes the new
//     version as its last step, so readers observe whole batches or
//     nothing — never a half-applied bulk.
//   - Copy-on-write: records live in fixed 256-record pages behind a
//     pointer spine, so a mutating batch copies only the pages it touches —
//     O(touched pages), not O(collection). Inserts append to slots beyond
//     every published length, which no reader accesses, so they copy
//     nothing; updates install modified clones instead of mutating stored
//     documents; a bare {_id: x} filter plans through the id map, making a
//     single-document update one page copy plus one map lookup
//     (BenchmarkSingleDocUpdateStream). Compaction rewrites into fresh
//     pages. An open cursor is therefore isolated from inserts, updates,
//     deletes, compaction, index churn and even Drop — the pre-MVCC
//     anomaly where deletes leaked into open cursors until an array
//     rewrite froze them is gone, and tests assert a cursor drained
//     across interleaved writes returns exactly the at-open document set
//     with at-open contents.
//   - Memory model: publishing is an atomic pointer store with release
//     semantics and pinning is an acquire load, so a reader that sees a
//     version sees every record and document written before its publish;
//     slots below a published length are never written again (copy-on-
//     write), appends target only memory outside every pinned version, and
//     published documents are immutable — hence readers need no locks and
//     the -race stress suite (readers vs BulkWrite / EnsureIndex backfill /
//     compaction / checkpoint streaming) stays quiet.
//   - Planning: entirely lock-free. Every published version owns a frozen
//     set of persistent index trees (see "MVCC memory management" for the
//     node-copy protocol), so index-backed queries pin a snapshot and plan,
//     scan and resolve positions against that version's trees with zero
//     mutex acquisitions — the planner reads the same immutable state the
//     scan does, so position lists are snapshot-consistent by construction
//     and EnsureIndex/DropIndex cannot disturb an open index-backed
//     cursor. FindOptions.Hint naming no index in the pinned version fails
//     with storage.ErrUnknownIndex through every layer instead of silently
//     degrading to a collection scan (a hint can therefore succeed at an
//     old version after the index is dropped from the current one).
//     BenchmarkIndexedFindUnderWrites measures the win: 8 readers issuing
//     index-backed group queries keep their throughput while a bulk writer
//     rewrites every index position list per batch.
//   - Read-at-version: FindOptions.AtVersion (wire "atVersion", the
//     atClusterTime analogue) pins a find to a named committed version:
//     run one query, read its snapshot version from explain or the
//     storage.plan span, and point follow-up queries at it so a whole
//     session describes one committed state no matter how many writes land
//     in between. A version is addressable while the engine tracks it —
//     anchor the session by keeping its first cursor open; afterwards the
//     request fails with storage.ErrVersionRetired rather than silently
//     reading newer state.
//   - Surfacing: storage.Plan carries SnapshotVersion and Isolation
//     ("snapshot"), shown by explain (FindWithPlan) and recorded by the
//     mongod profiler (ProfileEntry.PlanSummary/DocsExamined/
//     SnapshotVersion/Isolation) when a cursor finishes its drain. Wire
//     getMore batches of one cursor are mutually consistent; mongos
//     prefetch pumps scan per-shard snapshots while bulk writes keep
//     scattering; checkpoints stream pinned snapshots without stalling
//     writers; replset.FindCursor reads one member version under
//     replication. BenchmarkConcurrentScanUnderWrites measures the win: at
//     8 readers + 1 bulk writer the reader throughput is ~49x the locked
//     engine's.
//
// # MVCC memory management
//
// Versions are cheap to publish but not free to keep; this section is how
// the engine bounds what old versions cost and how to see who is paying.
//
//   - Page size: 256 records per page (storage's pageSize). Small enough
//     that a point write duplicates ~one page of record headers plus the
//     one replaced document; large enough that the spine (one pointer per
//     page) stays thousands of times smaller than the record data it
//     indexes. Record positions are stable across copies, so index
//     position lists and the id map survive page replacement.
//   - Pin tracking: Snapshot/Cursor pin the version they read (one atomic
//     add through a pin gate that closes the load-then-pin window);
//     Release/Close unpin. Every publish prunes unpinned superseded
//     versions immediately, so the live-version list is "current + one
//     entry per distinct pinned state", not one per write. Writers skip
//     nothing a pin can observe: a page is recycled only once it is
//     strictly below every pinned version's sequence.
//   - Node-copy protocol: index B-trees are persistent (path-copying).
//     Each writer batch opens a copy-on-write era stamped with its write
//     sequence; the first mutation of a node owned by an older era clones
//     it (O(log n) nodes per key, the untouched subtrees stay shared) and
//     the superseded memory is recorded as a retired set against the
//     publishing sequence. The copies themselves are lazy at two levels:
//     a path copy duplicates only the node shell (struct plus child
//     pointers) and aliases the item array until items actually mutate,
//     and the tree uses narrow leaves under wide interior nodes, since
//     the leaf item array is what a single-document era duplicates while
//     interior width buys shallow trees nearly free. Publishing freezes
//     the batch's trees into the new version — frozen handles panic on
//     mutation, and nodes created by an era are unreachable from any
//     earlier frozen clone, which is the whole safety argument for
//     lock-free readers. Retired node sets are reclaimed exactly like
//     retired pages: only once their sequence is strictly below every
//     pinned version's.
//   - GC thresholds: retired pages recycle into a bounded free list
//     (overflow falls to Go's GC — degradation, never corruption); each
//     publish also walks a few spine slots (gcPagesPerBatch) and nils out
//     fully tombstoned pages, so tombstone runs are reclaimed
//     incrementally without a stop-the-world sweep. Deletes drop their
//     document reference at tombstone time; Collection.GC forces a full
//     pass. Tombstone-majority collections still compact as before.
//   - Gauges: storage.EngineStats reports live versions, pinned
//     snapshots, oldest-pin age, retained bytes, COW bytes copied vs
//     shared (their ratio is the paging win), reclaimed bytes and page
//     churn. They aggregate through mongod.ServerStatus.Engine (also as
//     metrics gauges via Server.EngineGauges), every bulk write's profile
//     entry carries its COWBytesCopied, and wire stats exposes the
//     "engine" subdocument plus an "openCursors" list (cursor id,
//     namespace, kind, idle ms) — so docstore-shell can show which cursor
//     is retaining memory: the stuck cursor on the namespace whose gauges
//     report an old pin. TestStuckCursorRetentionGauges drives exactly
//     that diagnosis loop. The tree-COW gauges (tree nodes/bytes copied,
//     bytes shared, nodes/bytes reclaimed) sit beside the page gauges and
//     make the same loop work for index memory: a stuck cursor holds
//     retired tree nodes, Close plus GC returns them
//     (TestIndexTreeRetentionGauges).
//
// # Durability & recovery
//
// The storage engine is made crash-safe by a write-ahead log (internal/wal)
// that every write layer journals through before applying:
//
//   - WAL format: rotating segment files (wal-<firstLSN>.log, fsynced and
//     immutable once rotated) holding length-prefixed, CRC32C-checksummed
//     records. A record is a logical batch — the ops of one
//     storage.BulkWrite, a scalar write as a one-op batch, a collection
//     clear, or a collection/database drop — so replaying the log re-runs
//     the same deterministic batch code that ran the first time (insert _ids
//     are assigned before logging for exactly this reason).
//   - Sync policies (wal.SyncPolicy): "always" fsyncs once per acknowledged
//     write; "group" (the default) runs group commit — the first waiter
//     leads an fsync that covers every record appended before it, so
//     concurrent writers share disk flushes and acknowledged-write
//     throughput scales with concurrency (BenchmarkWALGroupCommit measures
//     the win over per-write fsync); "none" defers to rotation and
//     shutdown. The flush happens under the append lock but the fsync does
//     not, which is what lets the next batch fill while the disk works.
//   - writeConcern semantics: a write on a journaled collection is
//     acknowledged once its record is durable under the policy.
//     storage.BulkOptions.Journaled — surfaced as {j: true} ("j") on the
//     wire protocol's insert/insertMany/update/delete/bulkWrite and in
//     docstore-shell — escalates any policy to an fsync before
//     acknowledgement.
//   - Index durability: EnsureIndex and DropIndex are journaled like
//     writes (under the same collection lock, so replayed writes see the
//     same unique-key enforcement the original run did — an insert a
//     unique index rejected replays as rejected), and checkpoint manifests
//     carry each snapshot's index definitions so recovery rebuilds the
//     trees by backfilling.
//   - Checkpoints (mongod.Server.Checkpoint) reuse the storage snapshot
//     format and are a single capture point: HoldAllWrites pauses every
//     collection's writers for one pin instant, CaptureHeld pins a
//     snapshot of every collection plus the WAL position while nothing can
//     commit, and the hold releases before any disk I/O — so the capture
//     is a true cut (every record at or below the capture LSN is in some
//     captured snapshot), writers pause for microseconds, and recovery
//     restores every collection to exactly the same point before
//     replaying the tail. The cut is also what makes pruning exact: the
//     capture LSN alone is the prune cutoff, no min-over-watermarks
//     conservatism. Streaming to the checkpoint-<lsn> directory happens
//     from the pinned capture while writes flow again, and publication is
//     an atomic rename of a fsynced temp dir — a crash mid-stream leaves
//     the previous checkpoint intact, never a torn one. Older checkpoints
//     are removed once the new one is durable.
//   - Cluster checkpoints (mongos.Router.Checkpoint, wire op
//     "checkpoint", docstored -shards): phase one holds writes on every
//     shard simultaneously and pins a capture on each, phase two streams
//     each shard from its pinned capture while writes flow. Because no
//     shard can commit during the holds, causally ordered writes are cut
//     consistently — no restored shard is ever ahead of another — and a
//     shard that dies mid-stream leaves the cluster checkpoint wholly at
//     the capture point or cleanly absent. Sharding metadata is in-memory;
//     a restored cluster re-issues its shardCollection commands.
//   - Recovery (mongod.Server.EnableDurability) loads the newest complete
//     checkpoint, truncates any torn tail — a partial or checksum-failing
//     record left by a crash mid-append — from the newest segment, and
//     replays every record newer than each collection's snapshot
//     watermark. Torn records anywhere else are reported as corruption,
//     never silently dropped.
//   - replset shares the log format: oplog entries carry wal.Records,
//     AttachWAL makes the oplog durable, and LoadOplogFromWAL +
//     ApplyAll/Sync rebuild members from the log alone.
//   - docstored enables all of this with -data-dir, selects the policy
//     with -wal-sync, tunes the coalescing window and segment size with
//     -wal-group-interval / -wal-segment-mb, and checkpoints periodically
//     with -checkpoint-every (plus once at shutdown).
//
// Two caveats are inherent to logging logical batches before applying
// them. An upsert that inserts generates its document _id at apply time,
// so a WAL replay of an upsert can assign a different generated _id than
// the original run (plain inserts are not affected: ids are assigned
// before logging; replset sidesteps it by logging the upserted post-image
// as an insert, so replication stays deterministic). And one batch is one
// log record, bounded by wal.MaxRecordSize (64 MiB encoded): a journaled
// bulk write beyond that is rejected whole with a durability error before
// anything applies — split such loads into smaller batches.
//
// # Change streams
//
// internal/changestream turns the durability layer into a live event
// backbone: watchers tail the committed write feed the way real deployments
// tail the oplog to drive caches, search indexes and reactive clients.
//
//   - Events and tokens: every journaled write fans out as ordered events
//     {_id: resumeToken, operationType, ns, documentKey, fullDocument /
//     updateDescription / filter}. A resume token encodes (LSN, op index)
//     as 24 hex characters; an event's _id is its own token, and resuming
//     from a token delivers events strictly after it. The stream mirrors
//     the journal — it reports logged write intents, so an op that failed
//     to apply (duplicate _id) still appears, exactly as it would tailing
//     the oplog — and a resumed stream replays WAL segments from disk
//     before switching to the live tail, so live and resumed sequences are
//     identical: exactly-once delivery across disconnects and full server
//     restarts.
//   - Ordering: the write path publishes each record after its apply,
//     outside the collection lock; a per-server sequencer
//     (changestream.Broker) delivers only up to the contiguous LSN
//     frontier, so every watcher observes strictly increasing (LSN, op)
//     order. While nobody watches, the write path skips event
//     materialization entirely (one atomic load).
//   - Flow control: each watcher owns a bounded buffer
//     (changestream.DefaultBufferSize, docstored -changestream-buffer). A
//     watcher that overflows it is invalidated with ErrSlowConsumer — the
//     write path never blocks on a watcher — and resumes from its last
//     token. A token whose history checkpoint pruning removed fails with
//     ErrTokenTooOld rather than resuming with a gap.
//   - Filtering: mongod.Server.Watch accepts $match pipeline stages
//     compiled by the query matcher and evaluated against the event
//     document on the publish path, so uninteresting events never enter a
//     watcher's buffer; only delivered events advance the resume token, so
//     filters and resume compose.
//   - Cluster-wide: mongos.Router.Watch opens one stream per shard and
//     merges them (one pump goroutine per shard, the FindCursor prefetch
//     pattern) into a single feed with a composite per-shard resume token.
//     Per-shard LSN order is preserved; cross-shard interleaving is
//     arbitrary — the strongest guarantee independent per-shard logs
//     admit.
//   - Surfaces: the wire "watch" op opens a tailable cursor whose getMore
//     waits up to maxTimeMS for events (awaitData) and never exhausts;
//     live change-stream cursors get an extended idle window
//     (wire.TailableCursorTimeoutMultiple — polling keeps them alive
//     forever, an abandoned one still ages out), and killCursors tears
//     the subscription down, even mid-getMore. wire.Client.Watch wraps
//     the exchange, driver.Store.Watch abstracts over both deployments
//     (driver.Capabilities reports whether the deployment can watch),
//     and docstore-shell passes watch/getMore/resumeAfter straight
//     through.
//
// # Replication & write concern
//
// internal/replset replicates the primary's writes to secondaries through a
// replicated oplog, and the write concern decides how many members must have
// applied a write before it is acknowledged:
//
//   - Concern: storage.WriteConcern carries {w: 1|N|"majority", j: bool,
//     wtimeout: ms}, parsed by storage.ParseWriteConcern with strict
//     type-checking — a malformed or misspelled concern fails the request
//     rather than silently weakening to w: 1 (FuzzWriteConcernDecode pins
//     this down). It rides storage.BulkOptions through every write layer:
//     wire insert/insertMany/update/delete/bulkWrite accept a writeConcern
//     document, mongos fans it out per shard, and replset enforces it.
//   - Acknowledgement: the primary appends the batch to the oplog and, while
//     still holding the replica set lock, registers a quorum waiter keyed on
//     the entry's LSN — so an election that truncates the entry finds and
//     fails the waiter, never leaving it stranded. Appliers advance each
//     member's watermark and wake waiters as the count reaches w. {j: true}
//     additionally waits on the oplog WAL's group-commit fsync, making the
//     acknowledgement mean "durable on disk and applied on w members".
//   - Failure: an unsatisfied concern returns storage.WriteConcernError with
//     the replicated-so-far count and a reason — "wtimeout" (the wait
//     expired), "quorum unreachable" (too many members down for w to ever be
//     reached), "rolled back" (an election truncated the entry), or "replica
//     set closed". The write itself may still exist on the primary: the
//     error reports unacknowledged, not undone, exactly like MongoDB's
//     writeConcernError.
//   - Elections: StepDown elects the most-caught-up live member and
//     truncates the oplog to its watermark. A majority-acknowledged entry
//     was applied by floor(n/2)+1 members, and any live majority contains at
//     least one of them, so the elected tip is at or past the entry — which
//     is why w: "majority" acknowledged writes survive any primary kill plus
//     re-election. A deposed primary carrying rolled-back entries rejoins
//     stale-epoched: it is wiped and rebuilt by full oplog replay. The
//     fault-injection suite (internal/replset fault_test.go,
//     failover_test.go) kills and restarts members mid-bulk-write and
//     mid-change-stream tail under -race and asserts no acknowledged write
//     is lost, none applies twice, and the surviving set equals the
//     acknowledged set at the storage, mongod and mongos layers.
//   - Deployment: docstored -replicas N runs an in-process replica set with
//     the durable server as primary; -write-concern sets the default for
//     writes that carry none ("majority", "2+j", ...). On a durable server
//     the oplog has its own WAL under <data-dir>/oplog and is reloaded on
//     restart. cmd/bench -sweep measures acknowledged-write latency
//     (p50/p99/p999 per cell) across threads x members x writeConcern x
//     shards, and benchjson -p99-threshold turns tail regressions into CI
//     warnings.
//
// # Observability
//
// internal/trace and internal/metrics make every request's cost visible:
// span trees answer "where did THIS operation spend its time", histograms
// answer "what does this operation usually cost", and docstored serves both
// live.
//
//   - Span model: the wire handler roots one span per request
//     ("wire.<op>"); each layer attaches children as the request descends —
//     "mongos.shard" (per-shard fan-out, shard name attr),
//     "mongod.bulkWrite"/"mongod.find" (db/collection attrs),
//     "storage.bulkWrite" + "storage.apply" (ops, COW bytes copied, LSN),
//     "storage.plan" (chosen index, snapshot version), "wal.commitWait"
//     (the group-commit fsync wait), and "replset.oplogCommitWait" /
//     "replset.quorumWait" (w/need attrs) for replicated writes. The span
//     rides the existing storage.BulkOptions/FindOptions structs, so no
//     call signature changed; a nil tracer (or span) makes every
//     instrumentation call a no-op, which is why disabled tracing is free.
//   - Sampling: trace.Options.SampleRate decides at root creation (one
//     atomic splitmix64 step) whether a trace is retained; any trace whose
//     root duration reaches SlowThreshold is retained regardless — tail
//     retention, so slow outliers are always captured even at 1% sampling.
//     Completed traces live in a bounded ring (RingSize, oldest evicted);
//     every in-flight request is tracked regardless of sampling.
//   - Querying: the wire ops {"op": "currentOp"} (in-flight span trees,
//     oldest first) and {"op": "getTraces"} (completed trees, most recent
//     first, "limit" caps) render the trees as documents: traceId, spanId,
//     name, startUnixNano, durationUS, attrs, children. Introspection
//     requests are themselves never traced, so currentOp does not list
//     itself and reading the ring does not churn it.
//     wire.Client.CurrentOp/Traces and docstore-shell drive them.
//   - Metrics: internal/metrics provides lock-free log-bucketed latency
//     histograms (4 sub-buckets per power-of-two octave, ~12.5% bucket
//     error, mergeable by addition — the structure cmd/bench's percentile
//     harness also records into) and monotonic counters in a registry that
//     renders Prometheus text exposition. The mongod layer always records
//     docstore_mongod_ops_total{op} and
//     docstore_mongod_op_duration_seconds{op} (the profiler ring is gated
//     by -profile-slowms; the histograms are not), the wire layer records
//     docstore_wire_requests_total{op}, docstore_wire_request_errors_total
//     {op} and docstore_wire_request_duration_seconds{op}, and the MVCC
//     engine gauges plus tracer activity export as docstore_engine_* and
//     docstore_trace_* gauges.
//   - Labeled families: the mongod layer also records every operation into
//     docstore_mongod_collection_ops_total and
//     docstore_mongod_collection_op_duration_seconds, keyed by the bounded
//     label schema {collection="db.coll", op, shard=<server name>}. A
//     CounterVec/HistogramVec materializes at most maxSeries label sets
//     (metrics.DefaultMaxSeries = 128); past the cap, unseen sets share one
//     {...="other"} overflow series and a <family>_dropped_label_sets gauge
//     counts the refusals — a hostile stream of generated collection names
//     cannot explode the registry. Label values and HELP text are escaped
//     per the Prometheus text format (\n, \", \\).
//   - Exemplars: histogram buckets retain the most recent traced
//     observation as an OpenMetrics exemplar — rendered as
//     `... # {trace_id="..."} <value>`, but only when the scraper negotiates
//     the OpenMetrics format (Accept: application/openmetrics-text on
//     /metrics; the classic text format's parsers reject the suffix, so
//     plain scrapes stay exemplar-free) — and queryable as
//     documents with the wire op {"op": "getExemplars", "metric": <family>}.
//     An exemplar is recorded only when the request's trace was sampled at
//     start, so every exemplar's trace ID resolves through getTraces; a tail
//     bucket therefore links a latency outlier directly to the span tree
//     that produced it.
//   - Trace export: docstored -trace-export streams every retained trace out
//     of the process as OTLP-shaped JSON (resourceSpans → scopeSpans →
//     spans; 32-hex trace IDs, span/parent IDs, unix-nano timestamps,
//     attributes) with no external dependencies. An http(s):// value POSTs
//     one payload per trace to a collector with retry/backoff (4xx is
//     permanent, 5xx retried); any other value appends NDJSON to that file.
//     The export queue is bounded and non-blocking: a saturated sink drops
//     traces and counts them on the docstore_trace_exporter_{exported,
//     dropped,failed} gauges instead of ever stalling request handling.
//   - Filtered introspection: currentOp and getTraces accept "opName" (root
//     span name prefix) and "minDurationUS" filters, applied over the whole
//     ring before "limit" — "the five slowest inserts" does not depend on
//     what else sits at the head of the ring.
//   - Cluster health: serverStatus and /metrics surface replication lag per
//     member (docstore_replset_member_{lag,applied,apply_age_ns}, labeled
//     {member, set}; the serverStatus "repl" section carries the same as
//     member documents, aggregated across shards behind a mongos), WAL fsync
//     latency and group-commit batch-size histograms
//     (docstore_wal_fsync_duration_seconds, from the WAL's own histograms
//     attached to the registry — rotation/shutdown fsyncs excluded), per
//     watcher change-stream buffer depth (serverStatus
//     changeStreams.watcherDepths and docstore_changestream_* gauges), and
//     per-shard router dispatch state
//     (docstore_mongos_shard_{in_flight,calls,errors}).
//   - Endpoint: docstored -metrics-addr serves /metrics (both registries
//     merged) and net/http/pprof's /debug/pprof on one listener;
//     -trace-sample, -trace-ring and -profile-slowms tune the tracer. The
//     mongod profiler keeps the most recent entries in a fixed O(1) ring
//     (overwrite, no reslicing) rather than an appended slice.
package docstore
