package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"docstore/internal/bson"
	"docstore/internal/cluster"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// The indexed-find-under-writes mode is the lock-free planner's headline
// workload: eight reader threads issuing index-backed group queries while a
// bulk writer rewrites every document — and therefore every index position
// list — per batch. Before the persistent versioned index trees, every plan
// and every index scan serialized behind the writer's collection mutex;
// with them the readers never touch a lock. The mode measures three
// variants — plain indexed finds, index-narrowed projection finds (the
// covered-query shape), and the same reads through a sharded router — and
// prints `go test -bench`-formatted lines so cmd/benchjson folds the
// results into the same JSON summaries as the test benchmarks:
//
//	bench -indexed-find -find-docs 4000 -find-queries 64
//
// The custom tree-copied-B/batch metric is the engine gauge that proves the
// path-copying economics: index-tree bytes duplicated per writer batch,
// O(log n) nodes rather than the whole tree.
type indexedFindConfig struct {
	docs    int
	queries int // per reader
	readers int
	shards  int
}

const indexedFindGroups = 16

func runIndexedFind(cfg indexedFindConfig) error {
	if err := indexedFindStandalone(cfg, nil, "BenchmarkIndexedFindUnderWrites"); err != nil {
		return err
	}
	proj := query.MustParseProjection(bson.D("v", 1))
	if err := indexedFindStandalone(cfg, proj, "BenchmarkIndexedFindUnderWritesCovered"); err != nil {
		return err
	}
	return indexedFindSharded(cfg)
}

func indexedFindSeed(n int) []storage.WriteOp {
	ops := make([]storage.WriteOp, n)
	for i := 0; i < n; i++ {
		ops[i] = storage.InsertWriteOp(bson.D(
			bson.IDKey, fmt.Sprintf("seed-%d", i),
			"g", i%indexedFindGroups,
			"v", 0,
			"pad", fmt.Sprintf("item-%06d", i),
		))
	}
	return ops
}

func indexedFindWriteBatch() []storage.WriteOp {
	ops := make([]storage.WriteOp, indexedFindGroups)
	for g := 0; g < indexedFindGroups; g++ {
		ops[g] = storage.UpdateWriteOp(query.UpdateSpec{
			Query:  bson.D("g", g),
			Update: bson.D("$inc", bson.D("v", 1)),
			Multi:  true,
		})
	}
	return ops
}

// indexedFindRun drives the readers-vs-writer shape against any find/write
// pair and prints one benchmark line from the resulting rates.
func indexedFindRun(cfg indexedFindConfig, name string,
	find func(filter *bson.Doc) (int, error),
	write func() error,
	treeCopied func() int64) error {

	var readerDocs, writerBatches int64
	var readerErr, writerErr error
	var errOnce sync.Once
	fail := func(err error) { errOnce.Do(func() { readerErr = err }) }
	perGroup := cfg.docs / indexedFindGroups

	copiedBefore := treeCopied()
	start := time.Now()
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := write(); err != nil {
				writerErr = err
				return
			}
			atomic.AddInt64(&writerBatches, 1)
		}
	}()
	var readerWG sync.WaitGroup
	for r := 0; r < cfg.readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for q := 0; q < cfg.queries; q++ {
				g := (r + q) % indexedFindGroups
				n, err := find(bson.D("g", g))
				if err != nil {
					fail(err)
					return
				}
				if n != perGroup {
					fail(fmt.Errorf("indexed read returned %d docs for group %d, want %d", n, g, perGroup))
					return
				}
				atomic.AddInt64(&readerDocs, int64(n))
			}
		}(r)
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	elapsed := time.Since(start)
	if readerErr != nil {
		return readerErr
	}
	if writerErr != nil {
		return writerErr
	}

	batches := atomic.LoadInt64(&writerBatches)
	copiedPerBatch := float64(0)
	if batches > 0 {
		copiedPerBatch = float64(treeCopied()-copiedBefore) / float64(batches)
	}
	totalQueries := int64(cfg.readers * cfg.queries)
	fmt.Printf("%s/docs%d \t%d\t%d ns/op\t%.0f reader_docs/s\t%.1f writer_batches/s\t%.0f tree-copied-B/batch\n",
		name, cfg.docs, totalQueries, elapsed.Nanoseconds()/totalQueries,
		float64(atomic.LoadInt64(&readerDocs))/elapsed.Seconds(),
		float64(batches)/elapsed.Seconds(),
		copiedPerBatch)
	return nil
}

func indexedFindStandalone(cfg indexedFindConfig, proj *query.Projection, name string) error {
	c := storage.NewCollection("idxfind")
	if _, err := c.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
		return err
	}
	if res := c.BulkWrite(indexedFindSeed(cfg.docs), storage.BulkOptions{}); res.FirstError() != nil {
		return fmt.Errorf("seeding %d docs: %w", cfg.docs, res.FirstError())
	}
	if _, plan, err := c.FindWithPlan(bson.D("g", 0), storage.FindOptions{Projection: proj}); err != nil || plan.IndexUsed != "g_1" {
		return fmt.Errorf("plan = %s, %v; want IXSCAN g_1", plan, err)
	}
	return indexedFindRun(cfg, name,
		func(filter *bson.Doc) (int, error) {
			docs, err := c.Find(filter, storage.FindOptions{Projection: proj})
			return len(docs), err
		},
		func() error {
			res := c.BulkWrite(indexedFindWriteBatch(), storage.BulkOptions{})
			return res.FirstError()
		},
		func() int64 { return c.EngineStats().TreeBytesCopied })
}

func indexedFindSharded(cfg indexedFindConfig) error {
	cl, err := cluster.Build(cluster.Config{
		Shards:          cfg.shards,
		ParallelScatter: true,
		ChunkSizeBytes:  1 << 20,
	})
	if err != nil {
		return err
	}
	r := cl.Router()
	if _, err := r.EnableSharding("bench", "idxfind", bson.D("g", "hashed"), 1<<20); err != nil {
		return err
	}
	for _, name := range r.ShardNames() {
		shard := r.Shard(name).Database("bench").Collection("idxfind")
		if _, err := shard.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
			return err
		}
	}
	if res := r.BulkWrite("bench", "idxfind", indexedFindSeed(cfg.docs), storage.BulkOptions{}); res.FirstError() != nil {
		return fmt.Errorf("seeding %d docs: %w", cfg.docs, res.FirstError())
	}
	treeCopied := func() int64 {
		var total int64
		for _, name := range r.ShardNames() {
			total += r.Shard(name).Database("bench").Collection("idxfind").EngineStats().TreeBytesCopied
		}
		return total
	}
	return indexedFindRun(cfg, fmt.Sprintf("BenchmarkIndexedFindUnderWritesSharded/shards%d", cfg.shards),
		func(filter *bson.Doc) (int, error) {
			docs, err := r.Find("bench", "idxfind", filter, storage.FindOptions{})
			return len(docs), err
		},
		func() error {
			res := r.BulkWrite("bench", "idxfind", indexedFindWriteBatch(), storage.BulkOptions{})
			return res.FirstError()
		},
		treeCopied)
}
