package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"docstore/internal/bson"
	"docstore/internal/metrics"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/replset"
	"docstore/internal/sharding"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// The write-concern sweep measures acknowledged-write latency across the
// {threads} x {replica set size} x {write concern} x {shards} grid, printing
// one `go test -bench`-formatted line per cell with mean, p50, p99 and p999
// latencies as custom metrics, so cmd/benchjson folds the sweep into the
// same JSON summaries and regression comparisons as the test benchmarks:
//
//	bench -sweep -sweep-threads 1,4 -sweep-members 1,3 \
//	      -sweep-wc w1,majority,majority+j -sweep-shards 1 | \
//	    benchjson -out BENCH.json
type sweepConfig struct {
	threads  []int
	members  []int
	concerns []string
	shards   []int
	requests int
}

func runSweep(cfg sweepConfig) error {
	for _, s := range cfg.shards {
		for _, m := range cfg.members {
			for _, wcName := range cfg.concerns {
				wc, err := parseSweepConcern(wcName)
				if err != nil {
					return err
				}
				if wc.W > m {
					fmt.Fprintf(os.Stderr, "bench: skipping wc=%s at %d member(s): quorum unreachable by construction\n", wcName, m)
					continue
				}
				for _, t := range cfg.threads {
					snap, serverSnap, err := runSweepCell(t, m, s, wc, cfg.requests)
					if err != nil {
						return fmt.Errorf("cell t%d/m%d/wc%s/s%d: %w", t, m, wcName, s, err)
					}
					printSweepLine(t, m, wcName, s, snap)
					printSweepServerLine(t, m, wcName, s, serverSnap)
				}
			}
		}
	}
	return nil
}

// runSweepCell builds s replica sets of m members each (WAL-backed oplogs,
// so j:true measures a real fsync), fans requests across t writer
// goroutines, and returns two latency histograms: the client-observed
// acknowledged latency (all writers record into one lock-free
// metrics.Histogram — the same structure the server's /metrics endpoint
// exports, so harness and production agree on percentile math) and the
// server-side per-namespace execution latency, read back from each shard
// primary's labeled {collection, op, shard} histogram and merged. The gap
// between the two is the cell's acknowledgement overhead (replication and
// quorum wait), attributed to the bench.writes namespace.
func runSweepCell(threads, members, shards int, wc storage.WriteConcern, requests int) (metrics.HistogramSnapshot, metrics.HistogramSnapshot, error) {
	var none metrics.HistogramSnapshot
	sets := make([]*replset.ReplicaSet, shards)
	for si := range sets {
		ms := make([]*mongod.Server, members)
		for mi := range ms {
			ms[mi] = mongod.NewServer(mongod.Options{Name: fmt.Sprintf("s%dm%d", si, mi)})
		}
		rs, err := replset.New(fmt.Sprintf("rs%d", si), ms...)
		if err != nil {
			return none, none, err
		}
		dir, err := os.MkdirTemp("", "bench-oplog-")
		if err != nil {
			return none, none, err
		}
		defer os.RemoveAll(dir)
		w, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncGroupCommit})
		if err != nil {
			return none, none, err
		}
		defer w.Close()
		rs.AttachWAL(w)
		rs.StartReplication()
		defer rs.Close()
		sets[si] = rs
	}

	write := func(id int) storage.BulkResult {
		doc := bson.D(bson.IDKey, id, "k", id, "payload", "0123456789abcdef")
		return sets[0].BulkWrite("bench", "writes", []storage.WriteOp{storage.InsertWriteOp(doc)},
			storage.BulkOptions{Ordered: true, WriteConcern: wc})
	}
	if shards > 1 {
		router := mongos.NewRouter(sharding.NewConfigServer(), mongos.Options{})
		for si, rs := range sets {
			router.AddReplicaShard(fmt.Sprintf("shard%d", si), rs)
		}
		if _, err := router.EnableSharding("bench", "writes", bson.D("k", 1), 1<<20); err != nil {
			return none, none, err
		}
		write = func(id int) storage.BulkResult {
			doc := bson.D(bson.IDKey, id, "k", id, "payload", "0123456789abcdef")
			return router.BulkWrite("bench", "writes", []storage.WriteOp{storage.InsertWriteOp(doc)},
				storage.BulkOptions{Ordered: true, WriteConcern: wc})
		}
	}

	perThread := requests / threads
	if perThread == 0 {
		perThread = 1
	}
	var hist metrics.Histogram
	errs := make(chan error, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for j := 0; j < perThread; j++ {
				id := t*perThread + j
				start := time.Now()
				res := write(id)
				hist.Observe(time.Since(start))
				if err := res.FirstError(); err != nil {
					errs <- fmt.Errorf("request %d: %w", id, err)
					return
				}
			}
		}(t)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return none, none, err
	}
	// The server-side view of the same cell: every shard primary recorded
	// its bulkWrite executions into the labeled bench.writes series.
	var serverSnap metrics.HistogramSnapshot
	for _, rs := range sets {
		serverSnap.Merge(rs.Primary().CollectionOpDurations("bench.writes", "bulkWrite"))
	}
	return hist.Snapshot(), serverSnap, nil
}

// parseSweepConcern decodes a sweep cell's concern name: w<N> or majority,
// with an optional +j journal suffix (e.g. w1, majority, majority+j, w2+j).
func parseSweepConcern(name string) (storage.WriteConcern, error) {
	var wc storage.WriteConcern
	base := name
	if strings.HasSuffix(base, "+j") {
		wc.Journal = true
		base = strings.TrimSuffix(base, "+j")
	}
	switch {
	case base == "majority":
		wc.Majority = true
	case strings.HasPrefix(base, "w"):
		n, err := strconv.Atoi(base[1:])
		if err != nil || n < 1 {
			return wc, fmt.Errorf("bad write concern %q (want w<N>, majority, optionally +j)", name)
		}
		wc.W = n
	default:
		return wc, fmt.Errorf("bad write concern %q (want w<N>, majority, optionally +j)", name)
	}
	return wc, nil
}

func printSweepLine(threads, members int, wcName string, shards int, snap metrics.HistogramSnapshot) {
	fmt.Printf("BenchmarkWriteConcernSweep/t%d/m%d/wc%s/s%d \t%d\t%d ns/op\t%d p50-ns/op\t%d p99-ns/op\t%d p999-ns/op\n",
		threads, members, wcName, shards, snap.Count,
		snap.Mean().Nanoseconds(),
		snap.P50().Nanoseconds(), snap.P99().Nanoseconds(), snap.P999().Nanoseconds())
}

// printSweepServerLine emits the cell's server-side per-namespace latency as
// its own benchmark series, so benchjson attributes execution time to the
// bench.writes namespace separately from the acknowledged latency above.
func printSweepServerLine(threads, members int, wcName string, shards int, snap metrics.HistogramSnapshot) {
	fmt.Printf("BenchmarkWriteConcernSweepNS/bench.writes/t%d/m%d/wc%s/s%d \t%d\t%d ns/op\t%d p50-ns/op\t%d p99-ns/op\t%d p999-ns/op\n",
		threads, members, wcName, shards, snap.Count,
		snap.Mean().Nanoseconds(),
		snap.P50().Nanoseconds(), snap.P99().Nanoseconds(), snap.P999().Nanoseconds())
}

// parseIntList splits a comma-separated list of positive integers.
func parseIntList(flagName, s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-%s: bad entry %q (want positive integers)", flagName, p)
		}
		out = append(out, n)
	}
	return out, nil
}
