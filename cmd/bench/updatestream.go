package main

import (
	"fmt"
	"time"

	"docstore/internal/bson"
	"docstore/internal/metrics"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/replset"
	"docstore/internal/storage"
)

// The single-doc update stream is the paged-COW engine's headline workload:
// the same point-write shape the replica-set apply loop produces on every
// secondary. The mode measures it twice — straight against one
// storage.Collection, and acknowledged by a 3-member replica set with
// majority write concern — and prints `go test -bench`-formatted lines so
// cmd/benchjson folds the results into the same JSON summaries and
// regression comparisons as the test benchmarks:
//
//	bench -update-stream -stream-docs 100000 -stream-ops 5000
//
// The custom cow-copied-B/op metric is the engine gauge that proves the
// paging win: record bytes duplicated per operation, one page rather than
// the whole collection.
type updateStreamConfig struct {
	docs int
	ops  int
}

func runUpdateStream(cfg updateStreamConfig) error {
	if err := updateStreamStandalone(cfg); err != nil {
		return err
	}
	return updateStreamReplSet(cfg)
}

func updateStreamSeed(n int) []storage.WriteOp {
	ops := make([]storage.WriteOp, n)
	for i := 0; i < n; i++ {
		ops[i] = storage.InsertWriteOp(bson.D(
			bson.IDKey, fmt.Sprintf("doc-%d", i),
			"v", 0,
			"pad", fmt.Sprintf("item-%06d", i),
		))
	}
	return ops
}

func updateStreamOp(i, docs int) []storage.WriteOp {
	return []storage.WriteOp{storage.UpdateWriteOp(query.UpdateSpec{
		Query:  bson.D(bson.IDKey, fmt.Sprintf("doc-%d", i%docs)),
		Update: bson.D("$set", bson.D("v", i+1)),
	})}
}

func updateStreamStandalone(cfg updateStreamConfig) error {
	c := storage.NewCollection("stream")
	if res := c.BulkWrite(updateStreamSeed(cfg.docs), storage.BulkOptions{}); res.FirstError() != nil {
		return fmt.Errorf("seeding %d docs: %w", cfg.docs, res.FirstError())
	}
	var hist metrics.Histogram
	for i := 0; i < cfg.ops; i++ {
		start := time.Now()
		res := c.BulkWrite(updateStreamOp(i, cfg.docs), storage.BulkOptions{})
		hist.Observe(time.Since(start))
		if err := res.FirstError(); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
	}
	st := c.EngineStats()
	printUpdateStreamLine(fmt.Sprintf("BenchmarkUpdateStreamStandalone/docs%d", cfg.docs), hist.Snapshot(), &st)
	return nil
}

func updateStreamReplSet(cfg updateStreamConfig) error {
	members := make([]*mongod.Server, 3)
	for i := range members {
		members[i] = mongod.NewServer(mongod.Options{Name: fmt.Sprintf("m%d", i)})
	}
	rs, err := replset.New("stream-rs", members...)
	if err != nil {
		return err
	}
	rs.StartReplication()
	defer rs.Close()

	wc := storage.WriteConcern{Majority: true}
	if res := rs.BulkWrite("bench", "stream", updateStreamSeed(cfg.docs),
		storage.BulkOptions{WriteConcern: wc}); res.FirstError() != nil {
		return fmt.Errorf("seeding %d docs: %w", cfg.docs, res.FirstError())
	}
	var hist metrics.Histogram
	for i := 0; i < cfg.ops; i++ {
		start := time.Now()
		res := rs.BulkWrite("bench", "stream", updateStreamOp(i, cfg.docs), storage.BulkOptions{WriteConcern: wc})
		hist.Observe(time.Since(start))
		if err := res.FirstError(); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
	}
	// The primary's engine gauges carry the apply path's COW economics.
	st := rs.Primary().Status().Engine
	printUpdateStreamLine(fmt.Sprintf("BenchmarkUpdateStreamReplSetApply/m3/docs%d", cfg.docs), hist.Snapshot(), &st)
	return nil
}

func printUpdateStreamLine(name string, snap metrics.HistogramSnapshot, st *storage.EngineStats) {
	fmt.Printf("%s \t%d\t%d ns/op\t%d p50-ns/op\t%d p99-ns/op\t%.0f cow-copied-B/op\t%.0f reclaimed-B/op\n",
		name, snap.Count, snap.Mean().Nanoseconds(),
		snap.P50().Nanoseconds(), snap.P99().Nanoseconds(),
		float64(st.COWBytesCopied)/float64(snap.Count),
		float64(st.ReclaimedBytes)/float64(snap.Count))
}
