// Command bench runs the thesis' experiment matrix and regenerates its tables
// and figures:
//
//	bench                       # full suite: Tables 3.5/3.6/4.1/4.3/4.4/4.5, Figures 4.9/4.10/4.11
//	bench -table 4.5            # only the query-runtime table
//	bench -ablation shardkey    # one of the ablation studies (shardkey|index|scatter)
//	bench -divisor 50 -runs 5   # closer to paper scale, best-of-five runs
//
// Absolute times are not comparable to the paper's AWS cluster; the shape of
// the comparisons (which setup wins, per query) is what the run reproduces —
// the Observations section at the end checks the paper's §4.3 findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"docstore/internal/core"
	"docstore/internal/tpcds"
)

func main() {
	divisor := flag.Int("divisor", tpcds.DefaultDivisor, "row-count reduction divisor (1 = paper scale)")
	runs := flag.Int("runs", 3, "query executions per experiment (best run reported)")
	shards := flag.Int("shards", 3, "number of shards in the sharded environments")
	latency := flag.Duration("latency", 500*time.Microsecond, "simulated router-to-shard network latency")
	seed := flag.Int64("seed", 1, "data generator seed")
	table := flag.String("table", "", "render only one table (3.5, 3.6, 4.1, 4.3, 4.4, 4.5)")
	figure := flag.String("figure", "", "render only one figure (4.9, 4.10, 4.11)")
	ablation := flag.String("ablation", "", "run one ablation instead of the suite (shardkey, index, scatter)")
	extended := flag.Bool("extended", false, "also run the future-work experiments 7/8 (denormalized model on the sharded cluster)")
	sweep := flag.Bool("sweep", false, "run the write-concern latency sweep instead of the experiment suite")
	updateStream := flag.Bool("update-stream", false, "run the single-doc update-stream benchmark instead of the experiment suite")
	streamDocs := flag.Int("stream-docs", 100_000, "update-stream: collection size the stream mutates")
	streamOps := flag.Int("stream-ops", 5000, "update-stream: single-doc updates measured per variant")
	indexedFind := flag.Bool("indexed-find", false, "run the indexed-find-under-writes benchmark instead of the experiment suite")
	findDocs := flag.Int("find-docs", 4000, "indexed-find: collection size the readers query")
	findQueries := flag.Int("find-queries", 256, "indexed-find: index-backed queries per reader thread")
	sweepThreads := flag.String("sweep-threads", "1,4", "sweep: comma-separated client thread counts")
	sweepMembers := flag.String("sweep-members", "1,3", "sweep: comma-separated replica set sizes")
	sweepWC := flag.String("sweep-wc", "w1,majority,majority+j", "sweep: comma-separated write concerns (w<N>, majority, optional +j)")
	sweepShards := flag.String("sweep-shards", "1", "sweep: comma-separated shard counts (replica set per shard)")
	sweepRequests := flag.Int("sweep-requests", 400, "sweep: acknowledged writes measured per cell")
	flag.Parse()

	if *updateStream {
		if err := runUpdateStream(updateStreamConfig{docs: *streamDocs, ops: *streamOps}); err != nil {
			fatal(err)
		}
		return
	}

	if *indexedFind {
		cfg := indexedFindConfig{docs: *findDocs, queries: *findQueries, readers: 8, shards: *shards}
		if err := runIndexedFind(cfg); err != nil {
			fatal(err)
		}
		return
	}

	if *sweep {
		cfg := sweepConfig{requests: *sweepRequests, concerns: splitTrim(*sweepWC)}
		var err error
		if cfg.threads, err = parseIntList("sweep-threads", *sweepThreads); err != nil {
			fatal(err)
		}
		if cfg.members, err = parseIntList("sweep-members", *sweepMembers); err != nil {
			fatal(err)
		}
		if cfg.shards, err = parseIntList("sweep-shards", *sweepShards); err != nil {
			fatal(err)
		}
		if err := runSweep(cfg); err != nil {
			fatal(err)
		}
		return
	}

	small := tpcds.ScaleSmall.WithDivisor(*divisor)
	large := tpcds.ScaleLarge.WithDivisor(*divisor)
	cfg := core.DefaultConfig()
	cfg.Runs = *runs
	cfg.Shards = *shards
	cfg.NetworkLatency = *latency
	cfg.Seed = *seed

	// Static tables need no measurements.
	switch *table {
	case "3.5":
		fmt.Print(core.Table35())
		return
	case "3.6":
		fmt.Print(core.Table36(small, large))
		return
	case "4.1":
		fmt.Print(core.Table41(core.PaperExperiments(small, large)))
		return
	}

	if *ablation != "" {
		runAblation(*ablation, small, cfg)
		return
	}

	fmt.Printf("Running the experiment suite at divisor %d (store_sales: %d / %d rows)...\n\n",
		*divisor, small.RowCount("store_sales"), large.RowCount("store_sales"))
	start := time.Now()
	var suite *core.SuiteResult
	var err error
	if *extended {
		suite, err = core.RunExtendedSuite(small, large, cfg)
	} else {
		suite, err = core.RunSuite(small, large, cfg)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("suite completed in %s\n\n", time.Since(start).Round(time.Millisecond))

	smallStandalone := findExperiment(suite, small.Name)
	largeStandalone := findExperiment(suite, large.Name)

	switch {
	case *table == "4.3":
		fmt.Print(core.Table43(smallStandalone, largeStandalone))
	case *table == "4.4":
		fmt.Print(core.Table44(smallStandalone, largeStandalone))
	case *table == "4.5":
		fmt.Print(core.Table45(suite))
	case *figure == "4.9":
		fmt.Print(core.Figure49(smallStandalone, largeStandalone))
	case *figure == "4.10":
		fmt.Print(core.Figure410(suite, small.Name))
	case *figure == "4.11":
		fmt.Print(core.Figure411(suite, large.Name))
	default:
		fmt.Print(core.FullReport(suite, small, large))
		if *extended {
			fmt.Println()
			fmt.Print(core.ExtensionReport(suite, small.Name, large.Name))
		}
	}
}

func findExperiment(suite *core.SuiteResult, scaleName string) *core.ExperimentResult {
	for _, e := range suite.Experiments {
		if e.Spec.Scale.Name == scaleName && e.Spec.Model == core.Normalized && e.Spec.Env == core.StandAlone {
			return e
		}
	}
	return suite.Experiments[0]
}

func runAblation(name string, scale tpcds.Scale, cfg core.Config) {
	switch strings.ToLower(name) {
	case "shardkey":
		res, err := core.RunShardKeyAblation(scale, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.String())
	case "index":
		res, err := core.RunIndexAblation(scale, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.String())
	case "scatter":
		res, err := core.RunScatterAblation(scale, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.String())
	default:
		fatal(fmt.Errorf("unknown ablation %q (use shardkey, index or scatter)", name))
	}
}

func splitTrim(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(1)
}
