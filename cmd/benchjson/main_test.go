package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: docstore
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBulkInsertVsLoop/SingleNodeWire/Loop    	       1	 471982014 ns/op	     21187 docs/s	77059392 B/op	 2298145 allocs/op
BenchmarkBulkInsertVsLoop/SingleNodeWire/Bulk-8  	       1	 130634775 ns/op	     76550 docs/s	33230496 B/op	 1168553 allocs/op
BenchmarkTable35QueryFeatures-8                  	       1	      4399 ns/op
PASS
ok  	docstore	20.111s
`

func TestParseBench(t *testing.T) {
	sum, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks", len(sum.Benchmarks))
	}
	// The -8 GOMAXPROCS suffix is stripped.
	b, ok := sum.Benchmarks["BenchmarkBulkInsertVsLoop/SingleNodeWire/Bulk"]
	if !ok {
		t.Fatalf("suffix not normalized: %v", sum.Benchmarks)
	}
	if b.NsPerOp != 130634775 || b.BytesPerOp != 33230496 || b.AllocsPerOp != 1168553 {
		t.Fatalf("bench = %+v", b)
	}
	if b.Metrics["docs/s"] != 76550 {
		t.Fatalf("custom metric = %v", b.Metrics)
	}
	if noMem := sum.Benchmarks["BenchmarkTable35QueryFeatures"]; noMem.BytesPerOp != 0 || noMem.NsPerOp != 4399 {
		t.Fatalf("memless bench = %+v", noMem)
	}
}

func TestCompareFlagsBigBOpRegressions(t *testing.T) {
	baseline := &Summary{Benchmarks: map[string]Bench{
		"A": {BytesPerOp: 1000},
		"B": {BytesPerOp: 1000},
		"C": {NsPerOp: 5}, // no B/op: only time is compared
	}}
	current := &Summary{Benchmarks: map[string]Bench{
		"A": {BytesPerOp: 1500},  // 1.5x: fine
		"B": {BytesPerOp: 2500},  // 2.5x: regression
		"C": {BytesPerOp: 99999}, // baseline had no B/op, current has no ns/op
		"D": {BytesPerOp: 1},     // new benchmark
	}}
	var buf strings.Builder
	if n := compare(&buf, baseline, current, 2.0, 0); n != 1 {
		t.Fatalf("regressions = %d, output:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "B B/op regressed 2.50x") {
		t.Fatalf("warning output: %q", buf.String())
	}
}

func TestCompareFlagsBigNsOpRegressions(t *testing.T) {
	baseline := &Summary{Benchmarks: map[string]Bench{
		"A": {NsPerOp: 1000, BytesPerOp: 500},
		"B": {NsPerOp: 1000},
		"C": {NsPerOp: 1000, BytesPerOp: 500},
	}}
	current := &Summary{Benchmarks: map[string]Bench{
		"A": {NsPerOp: 1900, BytesPerOp: 500},  // 1.9x: fine
		"B": {NsPerOp: 2100},                   // 2.1x: regression
		"C": {NsPerOp: 2500, BytesPerOp: 1500}, // both regress: counted twice
	}}
	var buf strings.Builder
	if n := compare(&buf, baseline, current, 2.0, 0); n != 3 {
		t.Fatalf("regressions = %d, output:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "B ns/op regressed 2.10x") {
		t.Fatalf("missing ns/op warning: %q", out)
	}
	if !strings.Contains(out, "C B/op regressed 3.00x") || !strings.Contains(out, "C ns/op regressed 2.50x") {
		t.Fatalf("missing double warning: %q", out)
	}
}

func TestCompareFlagsP99Regressions(t *testing.T) {
	baseline := &Summary{Benchmarks: map[string]Bench{
		"Sweep/t1/m3/wcmajority/s1": {NsPerOp: 1000, Metrics: map[string]float64{"p99-ns/op": 5000}},
		"Sweep/t1/m3/wcw1/s1":       {NsPerOp: 1000, Metrics: map[string]float64{"p99-ns/op": 4000}},
	}}
	current := &Summary{Benchmarks: map[string]Bench{
		"Sweep/t1/m3/wcmajority/s1": {NsPerOp: 1100, Metrics: map[string]float64{"p99-ns/op": 15000}}, // 3x tail blowup
		"Sweep/t1/m3/wcw1/s1":       {NsPerOp: 1100, Metrics: map[string]float64{"p99-ns/op": 6000}},  // 1.5x: fine
	}}
	var buf strings.Builder
	// Disabled by default: the tail metric is only checked when asked for.
	if n := compare(&buf, baseline, current, 2.0, 0); n != 0 {
		t.Fatalf("p99 checked while disabled: %d regressions, output:\n%s", n, buf.String())
	}
	if n := compare(&buf, baseline, current, 2.0, 2.0); n != 1 {
		t.Fatalf("regressions = %d, output:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "wcmajority/s1 p99-ns/op regressed 3.00x") {
		t.Fatalf("warning output: %q", buf.String())
	}
}

func TestCompareFlagsAllTailPercentiles(t *testing.T) {
	baseline := &Summary{Benchmarks: map[string]Bench{
		"Sweep": {Metrics: map[string]float64{"p50-ns/op": 1000, "p99-ns/op": 5000, "p999-ns/op": 9000}},
	}}
	current := &Summary{Benchmarks: map[string]Bench{
		// p50 and p999 regress past 2x; p99 stays inside the band.
		"Sweep": {Metrics: map[string]float64{"p50-ns/op": 2500, "p99-ns/op": 9000, "p999-ns/op": 27000}},
	}}
	var buf strings.Builder
	if n := compare(&buf, baseline, current, 2.0, 2.0); n != 2 {
		t.Fatalf("regressions = %d, output:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "Sweep p50-ns/op regressed 2.50x") {
		t.Fatalf("missing p50 warning: %q", out)
	}
	if !strings.Contains(out, "Sweep p999-ns/op regressed 3.00x") {
		t.Fatalf("missing p999 warning: %q", out)
	}
}
