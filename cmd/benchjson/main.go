// Command benchjson converts `go test -bench` text output into a JSON
// summary (ns/op, B/op, allocs/op and custom metrics per benchmark) and
// optionally compares it against a previous summary, warning on large
// allocation (B/op) and time (ns/op) regressions. It is the CI
// perf-regression gate:
//
//	go test -run='^$' -bench=. -benchmem -benchtime=1x -count=1 . | \
//	    benchjson -out BENCH_PR2.json -baseline BENCH_PR1.json
//
// The comparison is fail-soft by default: regressions print warnings but
// exit 0 so a noisy runner cannot block a PR; -strict turns warnings into a
// non-zero exit. Benchmark names are normalized by stripping the trailing
// -GOMAXPROCS suffix so summaries compare across machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is the measured profile of one benchmark.
type Bench struct {
	NsPerOp     float64            `json:"ns_op,omitempty"`
	BytesPerOp  float64            `json:"b_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the whole JSON document.
type Summary struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output. Lines that are not benchmark
// results (headers, PASS, ok) are ignored.
func parseBench(r io.Reader) (*Summary, error) {
	sum := &Summary{Benchmarks: make(map[string]Bench)}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		b := Bench{}
		// fields[1] is the iteration count; the rest are (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = value
			case "B/op":
				b.BytesPerOp = value
			case "allocs/op":
				b.AllocsPerOp = value
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = value
			}
		}
		sum.Benchmarks[name] = b
	}
	return sum, scanner.Err()
}

// tailMetrics are the histogram-backed latency percentiles emitted by
// cmd/bench (the write-concern sweep and the update-stream mode), compared
// when -p99-threshold is set. p50 catches a shifted body that tail noise
// would mask; p999 catches tail collapse the median would mask.
var tailMetrics = []string{"p50-ns/op", "p99-ns/op", "p999-ns/op"}

// compare warns about benchmarks whose B/op or ns/op grew beyond threshold
// times the baseline — and, when p99Threshold > 0, whose latency-percentile
// tail metrics (emitted by cmd/bench) did the same — and returns the
// number of regressions. B/op is the stable signal (allocation profiles
// barely jitter); ns/op and the latency percentiles are noisier — especially
// at -benchtime=1x — which is why the comparison is fail-soft by default.
func compare(w io.Writer, baseline, current *Summary, threshold, p99Threshold float64) int {
	names := make([]string, 0, len(current.Benchmarks))
	for name := range current.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		cur := current.Benchmarks[name]
		base, ok := baseline.Benchmarks[name]
		if !ok {
			continue
		}
		if base.BytesPerOp > 0 {
			if ratio := cur.BytesPerOp / base.BytesPerOp; ratio > threshold {
				regressions++
				fmt.Fprintf(w, "WARN: %s B/op regressed %.2fx (%.0f -> %.0f)\n",
					name, ratio, base.BytesPerOp, cur.BytesPerOp)
			}
		}
		if base.NsPerOp > 0 {
			if ratio := cur.NsPerOp / base.NsPerOp; ratio > threshold {
				regressions++
				fmt.Fprintf(w, "WARN: %s ns/op regressed %.2fx (%.0f -> %.0f)\n",
					name, ratio, base.NsPerOp, cur.NsPerOp)
			}
		}
		if p99Threshold > 0 {
			for _, metric := range tailMetrics {
				baseTail := base.Metrics[metric]
				if baseTail <= 0 {
					continue
				}
				if ratio := cur.Metrics[metric] / baseTail; ratio > p99Threshold {
					regressions++
					fmt.Fprintf(w, "WARN: %s %s regressed %.2fx (%.0f -> %.0f)\n",
						name, metric, ratio, baseTail, cur.Metrics[metric])
				}
			}
		}
	}
	return regressions
}

func run() error {
	in := flag.String("in", "-", "bench output to read (- for stdin)")
	out := flag.String("out", "", "JSON summary to write")
	baselinePath := flag.String("baseline", "", "previous JSON summary to compare against")
	threshold := flag.Float64("threshold", 2.0, "warn when B/op or ns/op exceeds threshold x baseline")
	p99Threshold := flag.Float64("p99-threshold", 0, "also warn when a latency percentile metric (p50/p99/p999-ns/op) exceeds this x baseline (0 = off)")
	strict := flag.Bool("strict", false, "exit non-zero on regressions instead of warning")
	flag.Parse()

	var reader io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		reader = f
	}
	sum, err := parseBench(reader)
	if err != nil {
		return err
	}
	if len(sum.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	if *out != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(sum.Benchmarks), *out)
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		baseline := &Summary{}
		if err := json.Unmarshal(data, baseline); err != nil {
			return fmt.Errorf("parsing baseline: %w", err)
		}
		if n := compare(os.Stdout, baseline, sum, *threshold, *p99Threshold); n > 0 {
			fmt.Printf("%d B/op or ns/op regression(s) above %.1fx against %s\n", n, *threshold, *baselinePath)
			if *strict {
				return fmt.Errorf("benchmark regressions in strict mode")
			}
		} else {
			fmt.Printf("no B/op or ns/op regressions above %.1fx against %s\n", *threshold, *baselinePath)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
