// Command docstored runs the document store as a stand-alone server process
// speaking the line-delimited JSON wire protocol, the analogue of the mongod
// daemon in the thesis' deployments:
//
//	docstored -addr 127.0.0.1:27017 -name Shard1
//
// Clients connect with the wire.Client API or cmd/docstore-shell.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"docstore/internal/mongod"
	"docstore/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:27017", "listen address")
	name := flag.String("name", "docstored", "server name reported in stats")
	ramGB := flag.Int64("ram-gb", 0, "advertised RAM in GiB (informational, drives working-set reporting)")
	cursorTimeout := flag.Duration("cursor-timeout", wire.DefaultCursorTimeout, "idle timeout after which abandoned server-side cursors are reaped")
	flag.Parse()

	backend := mongod.NewServer(mongod.Options{Name: *name, RAMBytes: *ramGB << 30})
	srv := wire.NewServer(backend)
	srv.SetCursorTimeout(*cursorTimeout)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docstored: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("docstored %q listening on %s\n", *name, bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("docstored: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "docstored: close: %v\n", err)
		os.Exit(1)
	}
}
