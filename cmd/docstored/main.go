// Command docstored runs the document store as a stand-alone server process
// speaking the line-delimited JSON wire protocol, the analogue of the mongod
// daemon in the thesis' deployments:
//
//	docstored -addr 127.0.0.1:27017 -name Shard1
//
// With -data-dir the server is durable: every write is recorded in a
// write-ahead log before it applies, startup recovers the last checkpoint
// plus a log replay (truncating any torn tail left by a crash), and
// checkpoints prune obsolete log segments. The sync policy is chosen with
// -wal-sync:
//
//	docstored -data-dir /var/lib/docstore -wal-sync group -checkpoint-every 5m
//
//	-wal-sync always   one fsync per acknowledged write
//	-wal-sync group    group commit: concurrent writers share fsyncs (default)
//	-wal-sync none     fsync only on rotation/shutdown; writeConcern
//	                   {j: true} still forces one
//
// A durable server also serves change streams: the wire "watch" op opens a
// tailable cursor over the committed write feed, resumable by token.
// -changestream-buffer sizes each watcher's bounded event buffer — a watcher
// that falls further behind is invalidated (it resumes from its last token)
// rather than ever stalling the write path.
//
// With -replicas N (N > 1) the process runs an in-process replica set: the
// primary is this server (durable when -data-dir is set) and the N-1
// secondaries are volatile members fed from a replicated oplog. Writes may
// then carry a writeConcern ({w: 1|N|"majority", j, wtimeout}) and block
// until that many members applied them; -write-concern sets the default for
// writes that carry none ("1", "majority", "2+j", ...). On a durable server
// the oplog lives in its own WAL under <data-dir>/oplog, so a restarted
// process reloads it and the secondaries rebuild themselves by replay:
//
//	docstored -data-dir /var/lib/docstore -replicas 3 -write-concern majority
//
// Without -replicas, a write concern of w > 1 is refused — there is nothing
// to replicate to — while {w: 1} and {j: true} behave as before.
//
// With -shards N the process runs an in-process sharded cluster: N shard
// servers behind a query router (the mongos role). Data-plane requests fan
// out across the shards, "shardCollection" declares a collection's shard
// key, and "checkpoint" takes a cluster-consistent checkpoint — every shard
// captured under one simultaneous write hold, so restarting the cluster
// restores every shard to the same capture point. With -data-dir each shard
// is durable under its own <data-dir>/shardN directory:
//
//	docstored -data-dir /var/lib/docstore -shards 2 -checkpoint-every 5m
//
// Observability: every request is traced into a span tree (wire → router →
// mongod → storage → WAL/quorum waits) queryable over the wire with
// {"op":"currentOp"} (in flight) and {"op":"getTraces"} (completed); both
// accept opName/minDurationUS filters, and {"op":"getExemplars"} lists the
// latency-histogram exemplars linking /metrics buckets to retained traces.
// -trace-sample sets the fraction retained, -trace-ring the retention ring
// size, and -profile-slowms the slow-op threshold that both admits
// operations to the profiler ring and force-retains their traces. With
// -metrics-addr the process serves Prometheus-style counters, labeled
// {collection, op, shard} latency histograms (with exemplars), engine and
// cluster-health gauges on /metrics and the Go profiler on /debug/pprof.
// -trace-export streams every retained trace out of the process as
// OTLP-shaped JSON: an http(s):// value posts each trace to a collector
// endpoint (with retry and backoff), anything else appends NDJSON to that
// file; the export queue is bounded and never blocks request handling —
// overflow drops are counted on the docstore_trace_exporter gauges:
//
//	docstored -metrics-addr 127.0.0.1:9216 -trace-sample 0.05 -profile-slowms 50 \
//	          -trace-export /var/log/docstore/spans.ndjson
//
// Clients connect with the wire.Client API or cmd/docstore-shell.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"docstore/internal/metrics"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/replset"
	"docstore/internal/sharding"
	"docstore/internal/storage"
	"docstore/internal/trace"
	"docstore/internal/wal"
	"docstore/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:27017", "listen address")
	name := flag.String("name", "docstored", "server name reported in stats")
	ramGB := flag.Int64("ram-gb", 0, "advertised RAM in GiB (informational, drives working-set reporting)")
	cursorTimeout := flag.Duration("cursor-timeout", wire.DefaultCursorTimeout, "idle timeout after which abandoned server-side cursors are reaped")
	dataDir := flag.String("data-dir", "", "data directory; enables the write-ahead log and crash recovery when set")
	walSync := flag.String("wal-sync", "group", "WAL sync policy: always (fsync per write), group (group commit) or none")
	walGroupInterval := flag.Duration("wal-group-interval", 0, "extra coalescing window for the group-commit leader (0 = flush as soon as the previous fsync completes)")
	walSegmentMB := flag.Int64("wal-segment-mb", 0, "WAL segment rotation size in MiB (0 = default)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "interval between automatic checkpoints (0 = only the shutdown checkpoint)")
	changeStreamBuffer := flag.Int("changestream-buffer", 0, "per-watcher change stream event buffer; a watcher that falls this far behind is invalidated and must resume from its token (0 = default)")
	replicas := flag.Int("replicas", 1, "replica set size: this server as primary plus N-1 in-memory secondaries; writes may then use writeConcern w > 1")
	shards := flag.Int("shards", 0, "run an in-process sharded cluster: N shard servers behind a query router (the mongos role). Data-plane requests fan out across shards, shardCollection declares a shard key, and checkpoint is cluster-consistent. With -data-dir each shard is durable under <data-dir>/shardN. Incompatible with -replicas > 1")
	writeConcern := flag.String("write-concern", "1", "default write concern for writes that carry none: a member count or \"majority\", optionally +j (e.g. 1, majority, 2+j)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics (Prometheus text) and /debug/pprof (empty = off)")
	traceSample := flag.Float64("trace-sample", 0.01, "fraction of requests whose span trees are retained for getTraces; slow requests are always retained")
	traceRing := flag.Int("trace-ring", trace.DefaultRingSize, "completed traces kept in memory for getTraces (oldest evicted first)")
	traceExport := flag.String("trace-export", "", "where retained traces are exported as OTLP-shaped JSON: an http(s):// collector URL (one POST per trace, with retry) or a file path appended to as NDJSON (empty = off)")
	profileSlowMS := flag.Int("profile-slowms", 100, "slow-op threshold in milliseconds: operations at or above it enter the profiler ring and force trace retention")
	flag.Parse()

	defaultWC, err := storage.ParseWriteConcernString(*writeConcern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docstored: %v\n", err)
		os.Exit(1)
	}
	if *replicas < 1 {
		fmt.Fprintf(os.Stderr, "docstored: -replicas must be >= 1\n")
		os.Exit(1)
	}
	if defaultWC.W > *replicas {
		fmt.Fprintf(os.Stderr, "docstored: -write-concern %s cannot be satisfied by %d replica(s)\n", *writeConcern, *replicas)
		os.Exit(1)
	}
	if (defaultWC == storage.WriteConcern{W: 1}) {
		// A plain {w: 1} is the built-in default; normalizing it to the zero
		// concern keeps the standalone fast path for writes that carry none.
		defaultWC = storage.WriteConcern{}
	}

	sharded := *shards > 0
	if sharded && *replicas > 1 {
		fmt.Fprintf(os.Stderr, "docstored: -shards and -replicas > 1 are mutually exclusive\n")
		os.Exit(1)
	}

	slowThreshold := time.Duration(*profileSlowMS) * time.Millisecond
	backend := mongod.NewServer(mongod.Options{Name: *name, RAMBytes: *ramGB << 30, SlowOpThreshold: slowThreshold})
	durable := *dataDir != ""
	durabilityFor := func(srv *mongod.Server, dir string) mongod.RecoveryStats {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docstored: %v\n", err)
			os.Exit(1)
		}
		stats, err := srv.EnableDurability(mongod.Durability{
			Dir:                 dir,
			Sync:                policy,
			GroupCommitInterval: *walGroupInterval,
			SegmentMaxBytes:     *walSegmentMB << 20,
			ChangeStreamBuffer:  *changeStreamBuffer,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "docstored: durability: %v\n", err)
			os.Exit(1)
		}
		return stats
	}
	if durable && !sharded {
		stats := durabilityFor(backend, *dataDir)
		fmt.Printf("docstored: recovered from %s (checkpoint lsn %d, %d collection snapshots, %d wal records replayed)\n",
			*dataDir, stats.CheckpointLSN, stats.CollectionsLoaded, stats.RecordsReplayed)
	}

	// -shards: an in-process cluster — N shard servers behind a query
	// router, each durable under its own <data-dir>/shardN so the shards
	// recover independently while the router's checkpoint keeps their
	// durable states mutually consistent. The backend server holds no data
	// in this mode; it serves introspection (stats, traces).
	var router *mongos.Router
	var shardServers []*mongod.Server
	if sharded {
		router = mongos.NewRouter(sharding.NewConfigServer(), mongos.Options{Parallel: true})
		for i := 0; i < *shards; i++ {
			shardName := fmt.Sprintf("%s-shard%d", *name, i)
			shard := mongod.NewServer(mongod.Options{Name: shardName, SlowOpThreshold: slowThreshold})
			if durable {
				dir := filepath.Join(*dataDir, fmt.Sprintf("shard%d", i))
				stats := durabilityFor(shard, dir)
				fmt.Printf("docstored: shard %s recovered from %s (checkpoint lsn %d, %d collection snapshots, %d wal records replayed)\n",
					shardName, dir, stats.CheckpointLSN, stats.CollectionsLoaded, stats.RecordsReplayed)
			}
			router.AddShard(shardName, shard)
			shardServers = append(shardServers, shard)
		}
		fmt.Printf("docstored: routing across %d in-process shards\n", *shards)
	}

	var rs *replset.ReplicaSet
	var oplogWAL *wal.WAL
	if *replicas > 1 {
		members := []*mongod.Server{backend}
		for i := 1; i < *replicas; i++ {
			members = append(members, mongod.NewServer(mongod.Options{Name: fmt.Sprintf("%s-sec%d", *name, i)}))
		}
		rs, err = replset.New(*name, members...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docstored: %v\n", err)
			os.Exit(1)
		}
		if durable {
			// The oplog has its own WAL beside the primary's: reload it so
			// replication resumes where the last process stopped. The primary
			// already rebuilt its state through its own recovery, so it is
			// marked caught up; the volatile secondaries replay from zero.
			oplogDir := filepath.Join(*dataDir, "oplog")
			n, err := rs.LoadOplogFromWAL(oplogDir)
			if err != nil && !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "docstored: reloading oplog: %v\n", err)
				os.Exit(1)
			}
			if n > 0 {
				entries := rs.Oplog()
				rs.MarkApplied(backend.Name(), entries[len(entries)-1].Seq())
				fmt.Printf("docstored: reloaded %d oplog entries from %s\n", n, oplogDir)
			}
			policy, _ := wal.ParseSyncPolicy(*walSync)
			oplogWAL, err = wal.Open(wal.Options{
				Dir:                 oplogDir,
				Sync:                policy,
				GroupCommitInterval: *walGroupInterval,
				SegmentMaxBytes:     *walSegmentMB << 20,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "docstored: opening oplog wal: %v\n", err)
				os.Exit(1)
			}
			rs.AttachWAL(oplogWAL)
		}
		rs.SetDefaultWriteConcern(defaultWC)
		rs.StartReplication()
		fmt.Printf("docstored: replica set %q with %d members, default write concern {w: %s}\n",
			*name, *replicas, defaultWC.WString())
	}

	srv := wire.NewServer(backend)
	srv.SetCursorTimeout(*cursorTimeout)
	if rs != nil {
		srv.SetReplicaSet(rs)
	}
	if router != nil {
		srv.SetRouter(router)
	}
	srv.SetDefaultWriteConcern(defaultWC)
	tracer := trace.New(trace.Options{
		SampleRate:    *traceSample,
		SlowThreshold: slowThreshold,
		RingSize:      *traceRing,
	})
	srv.SetTracer(tracer)
	var exporter *trace.Exporter
	if *traceExport != "" {
		var sink trace.Sink
		if strings.HasPrefix(*traceExport, "http://") || strings.HasPrefix(*traceExport, "https://") {
			sink = trace.NewHTTPSink(*traceExport, trace.HTTPSinkOptions{})
		} else {
			fileSink, err := trace.NewFileSink(*traceExport)
			if err != nil {
				fmt.Fprintf(os.Stderr, "docstored: trace export: %v\n", err)
				os.Exit(1)
			}
			sink = fileSink
		}
		exporter = trace.NewExporter(sink, *name, 0)
		tracer.SetExporter(exporter)
		// Exporter throughput and drop counters ride the /metrics exposition
		// so a saturated or failing sink is visible without log scraping.
		srv.Metrics().AddGaugeSource("docstore_trace_exporter", func() []metrics.Gauge {
			st := exporter.Stats()
			return []metrics.Gauge{
				{Name: "exported", Value: st.Exported},
				{Name: "dropped", Value: st.Dropped},
				{Name: "failed", Value: st.Failed},
			}
		})
		fmt.Printf("docstored: exporting retained traces to %s\n", *traceExport)
	}
	if rs != nil {
		// Per-member replication lag and apply recency as labeled gauges.
		backend.Metrics().AddGaugeSource("", rs.HealthGauges)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docstored: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("docstored %q listening on %s\n", *name, bound)

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		// The pprof import registered its handlers on DefaultServeMux; mount
		// /metrics beside them so one listener serves both.
		http.Handle("/metrics", metrics.Handler(srv.Metrics(), backend.Metrics()))
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: http.DefaultServeMux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "docstored: metrics listener: %v\n", err)
			}
		}()
		fmt.Printf("docstored: serving /metrics and /debug/pprof on %s\n", *metricsAddr)
	}

	// checkpointNow is the one checkpoint entry point: stand-alone it
	// captures the backend; sharded it takes the router's cluster-consistent
	// checkpoint (every shard captured under one simultaneous write hold).
	checkpointNow := func() {
		if router != nil {
			st, err := router.Checkpoint()
			if err != nil {
				fmt.Fprintf(os.Stderr, "docstored: cluster checkpoint: %v\n", err)
				return
			}
			for shardName, sst := range st.Shards {
				if !sst.Skipped {
					fmt.Printf("docstored: shard %s checkpoint at lsn %d (%d collections, %d segments pruned)\n",
						shardName, sst.LSN, sst.Collections, sst.SegmentsPruned)
				}
			}
			return
		}
		if st, err := backend.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "docstored: checkpoint: %v\n", err)
		} else if !st.Skipped {
			fmt.Printf("docstored: checkpoint at lsn %d (%d collections, %d segments pruned)\n",
				st.LSN, st.Collections, st.SegmentsPruned)
		}
	}

	stopCheckpoints := make(chan struct{})
	var checkpointLoop sync.WaitGroup
	if durable && *checkpointEvery > 0 {
		checkpointLoop.Add(1)
		go func() {
			defer checkpointLoop.Done()
			ticker := time.NewTicker(*checkpointEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					checkpointNow()
				case <-stopCheckpoints:
					return
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("docstored: shutting down")
	close(stopCheckpoints)
	// Wait out any in-flight periodic checkpoint: the shutdown checkpoint
	// below would otherwise be refused as already-in-progress, and closing
	// the WAL under a running checkpoint would fail its pruning.
	checkpointLoop.Wait()
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "docstored: close: %v\n", err)
		os.Exit(1)
	}
	if exporter != nil {
		// The wire server is closed, so no new traces can finish: draining
		// the queue here flushes every retained trace to the sink.
		if err := exporter.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "docstored: closing trace exporter: %v\n", err)
		}
	}
	if rs != nil {
		// Fails any write still waiting on a quorum and stops the appliers
		// before the logs underneath them close.
		rs.Close()
	}
	if oplogWAL != nil {
		if err := oplogWAL.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "docstored: closing oplog wal: %v\n", err)
		}
	}
	if durable {
		// A shutdown checkpoint makes the next startup a snapshot load
		// instead of a long replay, and prunes the log while we are at it.
		// Sharded, it is cluster-consistent: every shard's durable state
		// restores to the same capture point.
		checkpointNow()
		if sharded {
			for _, shard := range shardServers {
				if err := shard.CloseDurability(); err != nil {
					fmt.Fprintf(os.Stderr, "docstored: closing shard wal: %v\n", err)
					os.Exit(1)
				}
			}
		} else if err := backend.CloseDurability(); err != nil {
			fmt.Fprintf(os.Stderr, "docstored: closing wal: %v\n", err)
			os.Exit(1)
		}
	}
}
