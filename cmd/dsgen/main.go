// Command dsgen generates the TPC-DS dataset as pipe-delimited .dat files,
// mirroring the dsdgen tool the thesis drives in Appendix A:
//
//	dsgen -scale 1 -dir data -divisor 200 -seed 1
//
// -scale selects the paper dataset the cardinality model follows (1 or 5,
// for the 1 GB and 5 GB datasets of Table 3.6) and -divisor scales the row
// counts down for laptop-sized runs (divisor 1 reproduces the paper's counts).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"docstore/internal/tpcds"
)

func main() {
	scaleFlag := flag.Int("scale", 1, "paper scale factor to mirror: 1 (1GB) or 5 (5GB)")
	dir := flag.String("dir", "data", "output directory for the .dat files")
	divisor := flag.Int("divisor", tpcds.DefaultDivisor, "row-count reduction divisor (1 = paper scale)")
	seed := flag.Int64("seed", 1, "generator seed")
	table := flag.String("table", "", "generate only the named table (default: all 24)")
	flag.Parse()

	var scale tpcds.Scale
	switch *scaleFlag {
	case 1:
		scale = tpcds.ScaleSmall.WithDivisor(*divisor)
	case 5:
		scale = tpcds.ScaleLarge.WithDivisor(*divisor)
	default:
		fmt.Fprintf(os.Stderr, "dsgen: unsupported -scale %d (use 1 or 5)\n", *scaleFlag)
		os.Exit(2)
	}
	g := tpcds.NewGenerator(scale, *seed)

	if *table != "" {
		if g.Schema().Table(*table) == nil {
			fmt.Fprintf(os.Stderr, "dsgen: unknown table %q\n", *table)
			os.Exit(2)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		path := *dir + "/" + tpcds.DatFileName(*table)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDat(*table, f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d rows\n", path, g.RowCount(*table))
		return
	}

	files, err := g.GenerateDir(*dir)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0
	for _, name := range names {
		rows := g.RowCount(name)
		total += rows
		fmt.Printf("%-24s %10d rows  %s\n", name, rows, files[name])
	}
	fmt.Printf("generated %d tables, %d rows total (scale %s)\n", len(files), total, scale)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dsgen: %v\n", err)
	os.Exit(1)
}
