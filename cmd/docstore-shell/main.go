// Command docstore-shell is a tiny interactive shell (and one-shot client)
// for a running docstored server, the counterpart of the mongo shell the
// thesis uses to run its JavaScript queries:
//
//	docstore-shell -addr 127.0.0.1:27017 -db Dataset_1GB \
//	    -eval '{"op":"find","coll":"store_sales","filter":{"ss_quantity":{"$gte":90}},"limit":2}'
//
// Without -eval it reads one JSON request per line from standard input. The
// "db" field may be omitted from requests when -db is given. Write requests
// accept a "j": true field (writeConcern {j: true}): the server then
// acknowledges only after the write's WAL record is fsynced. They also accept
// a full "writeConcern" document ({"w": 2, "wtimeout": 500} or
// {"w": "majority", "j": true}) against a docstored running with -replicas;
// an unsatisfied concern comes back as a writeConcernError inside the result
// document, with the count of members the write did reach. Find requests
// accept a "hint": "index_name" field forcing the named index; a hint that
// names no index fails the request instead of silently scanning. They also
// accept an "atVersion": N field — the atClusterTime analogue — pinning the
// query to the named committed collection version: run one query, read its
// snapshot version from the server's engine gauges or a getTraces span
// (storage.plan carries snapshotVersion), then pass it back so follow-up
// queries all describe that one committed state no matter how many writes
// land in between. Keep a cursor open at that version to anchor it against
// retention; a version the engine no longer tracks fails the request.
//
//	{"op":"find","coll":"store_sales","filter":{...},"atVersion":412}
//
// Against a sharded docstored (-shards N) the requests fan out through the
// in-process query router; two extra ops appear:
//
//	{"op":"shardCollection","coll":"store_sales","keys":{"ss_item_sk":1}}
//	{"op":"checkpoint"}
//
// shardCollection hash-partitions the collection across shards; checkpoint
// takes a cluster-consistent checkpoint (every shard captured under one
// simultaneous write hold — no restored shard is ever ahead of another).
// checkpoint works against a stand-alone durable server too.
//
// Change streams pass through as requests too: a watch opens a tailable
// cursor and getMore drains it, waiting up to maxTimeMS for new events —
//
//	{"op":"watch","coll":"store_sales","docs":[{"$match":{"operationType":"insert"}}]}
//	{"op":"getMore","cursorId":1,"maxTimeMS":5000}
//	{"op":"killCursors","cursorId":1}
//
// and "resumeAfter" resumes a watch from a previous response's resumeToken
// (every event's _id is its own token).
//
// {"op":"stats"} returns serverStatus including the MVCC engine gauges
// ("engine": live versions, oldest pin age, retained/COW/reclaimed bytes)
// and the "openCursors" list (cursor id, namespace, kind, idle ms) — enough
// to spot which abandoned cursor is retaining memory and killCursors it.
//
// When the server traces (docstored does by default; tune with
// -trace-sample/-trace-ring/-profile-slowms), the introspection ops need no
// "db" and return span trees — each document carries traceId, spanId, name,
// startUnixNano, durationUS, attrs and children:
//
//	{"op":"currentOp"}              in-flight operations, oldest first
//	{"op":"getTraces","limit":5}    completed traces, most recent first
//
// Both accept "opName" (root-span name prefix, e.g. "wire.insert") and
// "minDurationUS" filters, applied before the limit — so
// {"op":"getTraces","opName":"wire.insert","minDurationUS":5000,"limit":3}
// returns the three most recent retained inserts that took at least 5ms.
// {"op":"getExemplars"} lists the latency-histogram exemplars (optionally
// narrowed with "metric": a family name): each document links one labeled
// series' buckets to the trace IDs of the requests that landed in them,
// resolvable with getTraces. When docstored runs with -trace-export, every
// retained trace is also exported as OTLP-shaped JSON to that file or
// collector URL.
//
// A write's tree shows where its latency went — the mongos shard fan-out,
// the storage apply, the WAL group-commit wait ("wal.commitWait") and, for
// w > 1, the replica quorum wait ("replset.quorumWait"). Slow operations
// (past -profile-slowms) are always retained regardless of the sample rate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"docstore/internal/bson"
	"docstore/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:27017", "docstored address")
	db := flag.String("db", "test", "default database for requests that omit one")
	eval := flag.String("eval", "", "run a single JSON request and exit")
	flag.Parse()

	client, err := wire.Dial(*addr, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docstore-shell: %v\n", err)
		os.Exit(1)
	}
	defer client.Close()

	runLine := func(line string) error {
		line = strings.TrimSpace(line)
		if line == "" {
			return nil
		}
		doc, err := bson.FromJSONString(line)
		if err != nil {
			return fmt.Errorf("parse: %w", err)
		}
		if !doc.Has("db") {
			doc.Set("db", *db)
		}
		resp, err := execute(client, doc)
		if err != nil {
			return err
		}
		for _, d := range resp.Docs {
			fmt.Println(d.ToJSON())
		}
		if resp.Result != nil {
			fmt.Println(resp.Result.ToJSON())
		}
		switch {
		case resp.CursorID != 0 && resp.ResumeToken != "":
			fmt.Printf("ok (n=%d, cursorId=%d, resumeToken=%s)\n", resp.N, resp.CursorID, resp.ResumeToken)
		case resp.CursorID != 0:
			fmt.Printf("ok (n=%d, cursorId=%d)\n", resp.N, resp.CursorID)
		default:
			fmt.Printf("ok (n=%d)\n", resp.N)
		}
		return nil
	}

	if *eval != "" {
		if err := runLine(*eval); err != nil {
			fmt.Fprintf(os.Stderr, "docstore-shell: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("connected to %s (db %s); one JSON request per line, Ctrl-D to exit\n", *addr, *db)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for scanner.Scan() {
		if err := runLine(scanner.Text()); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

// execute converts the free-form request document into a typed request by
// routing it through the wire codec (the document already uses the protocol's
// field names).
func execute(client *wire.Client, doc *bson.Doc) (*wire.Response, error) {
	req := &wire.Request{}
	if v, ok := doc.Get("op"); ok {
		req.Op, _ = v.(string)
	}
	if v, ok := doc.Get("db"); ok {
		req.DB, _ = v.(string)
	}
	if v, ok := doc.Get("coll"); ok {
		req.Collection, _ = v.(string)
	}
	if v, ok := doc.Get("doc"); ok {
		req.Doc, _ = v.(*bson.Doc)
	}
	if v, ok := doc.Get("filter"); ok {
		req.Filter, _ = v.(*bson.Doc)
	}
	if v, ok := doc.Get("update"); ok {
		req.Update, _ = v.(*bson.Doc)
	}
	if v, ok := doc.Get("sort"); ok {
		req.Sort, _ = v.(*bson.Doc)
	}
	if v, ok := doc.Get("projection"); ok {
		req.Projection, _ = v.(*bson.Doc)
	}
	if v, ok := doc.Get("keys"); ok {
		req.Keys, _ = v.(*bson.Doc)
	}
	if v, ok := doc.Get("hint"); ok {
		req.Hint = wire.HintString(v)
	}
	if v, ok := doc.Get("docs"); ok {
		if arr, isArr := v.([]any); isArr {
			for _, e := range arr {
				if d, isDoc := e.(*bson.Doc); isDoc {
					req.Docs = append(req.Docs, d)
				}
			}
		}
	}
	if v, ok := doc.Get("limit"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			req.Limit = int(n)
		}
	}
	if v, ok := doc.Get("skip"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			req.Skip = int(n)
		}
	}
	if v, ok := doc.Get("atVersion"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			req.AtVersion = n
		}
	}
	if v, ok := doc.Get("batchSize"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			req.BatchSize = int(n)
		}
	}
	if v, ok := doc.Get("cursorId"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			req.CursorID = n
		}
	}
	if v, ok := doc.Get("resumeAfter"); ok {
		req.ResumeAfter, _ = v.(string)
	}
	if v, ok := doc.Get("opName"); ok {
		req.OpName, _ = v.(string)
	}
	if v, ok := doc.Get("minDurationUS"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			req.MinDurationUS = n
		}
	}
	if v, ok := doc.Get("metric"); ok {
		req.Metric, _ = v.(string)
	}
	if v, ok := doc.Get("maxTimeMS"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			req.MaxTimeMS = int(n)
		}
	}
	req.Multi = bson.Truthy(doc.GetOr("multi", false))
	req.Upsert = bson.Truthy(doc.GetOr("upsert", false))
	req.Unique = bson.Truthy(doc.GetOr("unique", false))
	req.Ordered = bson.Truthy(doc.GetOr("ordered", false))
	req.Journaled = bson.Truthy(doc.GetOr("j", false))
	if v, ok := doc.Get("writeConcern"); ok {
		// Pass the document through untouched: the server owns validation and
		// a malformed concern must fail there, not be silently dropped here.
		if wcDoc, isDoc := v.(*bson.Doc); isDoc {
			req.WriteConcern = wcDoc
		} else {
			return nil, fmt.Errorf("writeConcern must be a document, got %T", v)
		}
	}
	return client.Do(req)
}
