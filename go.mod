module docstore

go 1.24
