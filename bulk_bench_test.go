// Benchmarks for the bulk-write engine (PR 2): a batched bulk insert versus
// the per-document write loop on both deployment shapes.
//
//	BenchmarkBulkInsertVsLoop/SingleNodeWire/*  — 10k docs over the wire
//	    protocol against a stand-alone server: one bulkWrite round trip vs
//	    one insert round trip per document.
//	BenchmarkBulkInsertVsLoop/Router4Shards/*   — 10k docs through a 4-shard
//	    query router with the simulated inter-instance network latency of the
//	    thesis' cluster: one grouped sub-batch per shard vs one routed call
//	    per document.
//	BenchmarkShardedBulkScatter/*               — the grouping scatter in
//	    ordered (sequential contiguous runs) vs unordered (parallel per-shard
//	    fan-out) mode, reporting shard round trips per batch.
//
// Throughput is reported as docs/s; the bulk paths must clear 2x the loop
// paths (CI records both in BENCH_PR2.json).
package docstore_test

import (
	"fmt"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/cluster"
	"docstore/internal/mongod"
	"docstore/internal/storage"
	"docstore/internal/wire"
)

const bulkBenchDocs = 10000

// benchRouterLatency models the AWS inter-instance network of the thesis'
// cluster (DefaultConfig uses 200µs; this keeps loop iterations affordable).
const benchRouterLatency = 50 * time.Microsecond

// bulkBenchDoc builds one small sales-like document with a unique _id.
func bulkBenchDoc(iter, i int) *bson.Doc {
	return bson.D(
		bson.IDKey, fmt.Sprintf("doc-%d-%d", iter, i),
		"k", i,
		"qty", i%100,
		"price", float64(i%997)+0.99,
	)
}

func reportDocsPerSec(b *testing.B, docs int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(docs*b.N)/s, "docs/s")
	}
}

func BenchmarkBulkInsertVsLoop(b *testing.B) {
	b.Run("SingleNodeWire", func(b *testing.B) {
		srv := wire.NewServer(mongod.NewServer(mongod.Options{Name: "standalone"}))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client, err := wire.Dial(addr, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()

		b.Run("Loop", func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				for i := 0; i < bulkBenchDocs; i++ {
					if err := client.Insert("bench", "loop", bulkBenchDoc(n, i)); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportDocsPerSec(b, bulkBenchDocs)
		})
		b.Run("Bulk", func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				ops := make([]*bson.Doc, bulkBenchDocs)
				for i := range ops {
					ops[i] = wire.BulkInsertOp(bulkBenchDoc(n, i))
				}
				res, err := client.BulkWrite("bench", "bulk", ops, false)
				if err != nil {
					b.Fatal(err)
				}
				if res.Inserted != bulkBenchDocs || len(res.WriteErrors) != 0 {
					b.Fatalf("bulk inserted %d with %d errors", res.Inserted, len(res.WriteErrors))
				}
			}
			reportDocsPerSec(b, bulkBenchDocs)
		})
	})

	b.Run("Router4Shards", func(b *testing.B) {
		c := cluster.MustBuild(cluster.Config{
			Shards:          4,
			NetworkLatency:  benchRouterLatency,
			ParallelScatter: true,
			ChunkSizeBytes:  1 << 20,
		})
		r := c.Router()
		if _, err := r.EnableSharding("bench", "sales", bson.D("k", "hashed"), 1<<20); err != nil {
			b.Fatal(err)
		}

		b.Run("Loop", func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				for i := 0; i < bulkBenchDocs; i++ {
					if _, err := r.Insert("bench", "sales", bulkBenchDoc(n, i)); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportDocsPerSec(b, bulkBenchDocs)
		})
		b.Run("Bulk", func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				ops := make([]storage.WriteOp, bulkBenchDocs)
				for i := range ops {
					ops[i] = storage.InsertWriteOp(bulkBenchDoc(-n-1, i))
				}
				res := r.BulkWrite("bench", "sales", ops, storage.BulkOptions{})
				if res.Inserted != bulkBenchDocs || len(res.Errors) != 0 {
					b.Fatalf("bulk inserted %d with %d errors", res.Inserted, len(res.Errors))
				}
			}
			reportDocsPerSec(b, bulkBenchDocs)
		})
	})
}

// BenchmarkShardedBulkScatter contrasts the two dispatch modes of the
// grouping scatter on a 4-shard cluster: ordered batches walk contiguous
// same-shard runs sequentially, unordered batches fan the per-shard
// sub-batches out in parallel goroutines.
func BenchmarkShardedBulkScatter(b *testing.B) {
	for _, mode := range []struct {
		name    string
		ordered bool
	}{{"Unordered", false}, {"Ordered", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := cluster.MustBuild(cluster.Config{
				Shards:          4,
				NetworkLatency:  benchRouterLatency,
				ParallelScatter: true,
				ChunkSizeBytes:  1 << 20,
			})
			r := c.Router()
			if _, err := r.EnableSharding("bench", "sales", bson.D("k", "hashed"), 1<<20); err != nil {
				b.Fatal(err)
			}
			r.ResetStats()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				ops := make([]storage.WriteOp, bulkBenchDocs)
				for i := range ops {
					ops[i] = storage.InsertWriteOp(bulkBenchDoc(n, i))
				}
				res := r.BulkWrite("bench", "sales", ops, storage.BulkOptions{Ordered: mode.ordered})
				if res.Inserted != bulkBenchDocs || len(res.Errors) != 0 {
					b.Fatalf("bulk inserted %d with %d errors", res.Inserted, len(res.Errors))
				}
			}
			b.StopTimer()
			reportDocsPerSec(b, bulkBenchDocs)
			if b.N > 0 {
				b.ReportMetric(float64(r.Stats().ShardCalls)/float64(b.N), "shard_calls/batch")
			}
		})
	}
}
